//! The trace filter: which records a sink gets to see.

use crate::record::{RecData, TraceRecord};
use lrc_mesh::MsgClass;
use lrc_sim::NodeId;

/// A conjunctive record filter. Each facet is optional; an unset facet
/// accepts everything, so [`TraceFilter::all`] (the default) passes every
/// record. Facets that only apply to some record shapes are *strict*: a
/// line filter rejects records with no line (sync ops, resource events),
/// and a class filter rejects non-message records — "show me line 7"
/// means line 7, not line 7 plus everything unlineable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Accept only records concerning one of these lines (sorted).
    lines: Option<Vec<u64>>,
    /// Accept only records touching a node in this bitmask (either
    /// endpoint for messages; the recording node otherwise).
    nodes: Option<u64>,
    /// Accept only message records of a class in this bitmask.
    classes: Option<u8>,
    /// Accept only records whose category bit
    /// ([`TraceRecord::category_index`]) is set here.
    categories: Option<u8>,
}

impl TraceFilter {
    /// Accept every record.
    pub fn all() -> Self {
        TraceFilter::default()
    }

    /// Accept only records concerning `line` (the common debugging case).
    pub fn line(line: u64) -> Self {
        TraceFilter::default().with_lines([line])
    }

    /// Restrict to records concerning one of `lines`.
    pub fn with_lines<I: IntoIterator<Item = u64>>(mut self, lines: I) -> Self {
        let mut v: Vec<u64> = lines.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        self.lines = Some(v);
        self
    }

    /// Restrict to records touching one of `nodes` (node ids must be < 64,
    /// matching the machine's directory sharer masks).
    pub fn with_nodes<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        let mut mask = 0u64;
        for n in nodes {
            assert!(n < 64, "node filters support node ids < 64");
            mask |= 1 << n;
        }
        self.nodes = Some(mask);
        self
    }

    /// Restrict to message records of one of `classes`.
    pub fn with_classes(mut self, classes: &[MsgClass]) -> Self {
        let mut mask = 0u8;
        for c in classes {
            mask |= 1 << c.index();
        }
        self.classes = Some(mask);
        self
    }

    /// Restrict to message records only (sends and receives).
    pub fn messages_only(mut self) -> Self {
        self.categories = Some(0b00011);
        self
    }

    /// Restrict to message *sends* only — the view the pre-observability
    /// trace ring recorded, kept for timeline-style reports where each
    /// message should appear once.
    pub fn sends_only(mut self) -> Self {
        self.categories = Some(0b00001);
        self
    }

    /// Does `rec` pass every configured facet?
    pub fn accepts(&self, rec: &TraceRecord) -> bool {
        if let Some(cats) = self.categories {
            if cats & (1 << rec.category_index()) == 0 {
                return false;
            }
        }
        if let Some(mask) = self.nodes {
            let hit = |n: NodeId| n < 64 && mask & (1 << n) != 0;
            let ok = match rec.data {
                RecData::Send { src, dst, .. } | RecData::Recv { src, dst, .. } => {
                    hit(src) || hit(dst)
                }
                _ => hit(rec.node),
            };
            if !ok {
                return false;
            }
        }
        if let Some(classes) = self.classes {
            match rec.class() {
                Some(c) if classes & (1 << c.index()) != 0 => {}
                _ => return false,
            }
        }
        if let Some(lines) = &self.lines {
            match rec.line() {
                Some(l) if lines.binary_search(&l).is_ok() => {}
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MsgMeta, SyncOp};

    fn send(src: NodeId, dst: NodeId, line: u64, class: MsgClass) -> TraceRecord {
        TraceRecord {
            at: 0,
            seq: 0,
            node: src,
            data: RecData::Send {
                src,
                dst,
                msg: MsgMeta { name: "x", class, line: Some(line), bytes: 8 },
            },
        }
    }

    fn sync(node: NodeId) -> TraceRecord {
        TraceRecord { at: 0, seq: 0, node, data: RecData::Sync { op: SyncOp::Release, id: 0 } }
    }

    #[test]
    fn all_accepts_everything() {
        let f = TraceFilter::all();
        assert!(f.accepts(&send(0, 1, 5, MsgClass::Request)));
        assert!(f.accepts(&sync(3)));
    }

    #[test]
    fn line_filter_is_strict() {
        let f = TraceFilter::line(5);
        assert!(f.accepts(&send(0, 1, 5, MsgClass::Request)));
        assert!(!f.accepts(&send(0, 1, 6, MsgClass::Request)));
        assert!(!f.accepts(&sync(0)), "no line means no match under a line filter");
    }

    #[test]
    fn node_filter_matches_either_endpoint() {
        let f = TraceFilter::all().with_nodes([2]);
        assert!(f.accepts(&send(2, 9, 0, MsgClass::Request)));
        assert!(f.accepts(&send(9, 2, 0, MsgClass::Request)));
        assert!(!f.accepts(&send(0, 1, 0, MsgClass::Request)));
        assert!(f.accepts(&sync(2)));
        assert!(!f.accepts(&sync(3)));
    }

    #[test]
    fn class_filter_is_strict() {
        let f = TraceFilter::all().with_classes(&[MsgClass::Notice, MsgClass::Sync]);
        assert!(f.accepts(&send(0, 1, 0, MsgClass::Notice)));
        assert!(!f.accepts(&send(0, 1, 0, MsgClass::Request)));
        assert!(!f.accepts(&sync(0)), "non-message records fail a class filter");
    }

    #[test]
    fn category_facets() {
        assert!(!TraceFilter::all().messages_only().accepts(&sync(0)));
        assert!(TraceFilter::all().messages_only().accepts(&send(0, 1, 0, MsgClass::Link)));
        let sends = TraceFilter::all().sends_only();
        assert!(sends.accepts(&send(0, 1, 0, MsgClass::Request)));
        let recv = TraceRecord {
            data: RecData::Recv {
                src: 0,
                dst: 1,
                msg: MsgMeta { name: "x", class: MsgClass::Request, line: None, bytes: 8 },
            },
            ..send(0, 1, 0, MsgClass::Request)
        };
        assert!(!sends.accepts(&recv));
    }

    #[test]
    fn facets_compose_conjunctively() {
        let f = TraceFilter::line(5).with_nodes([0]).with_classes(&[MsgClass::Request]);
        assert!(f.accepts(&send(0, 1, 5, MsgClass::Request)));
        assert!(!f.accepts(&send(0, 1, 5, MsgClass::Response)));
        assert!(!f.accepts(&send(2, 1, 5, MsgClass::Request)));
    }
}

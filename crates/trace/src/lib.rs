//! `lrc-trace` — the simulator's observability layer.
//!
//! Everything here is *vocabulary and plumbing*: the machine (`lrc-core`)
//! decides when to emit, this crate decides what a record looks like, who
//! keeps it, and how it leaves the process. Four pieces:
//!
//! * [`record`] — the structured [`TraceRecord`]: message sends/receives,
//!   synchronization operations, cache-state transitions, and
//!   finite-resource events, each stamped with a cycle time and a global
//!   emission sequence number.
//! * [`filter`] + [`sink`] — a [`TraceFilter`] (line set, node set,
//!   message class, record category) in front of a pluggable
//!   [`TraceSink`] (bounded ring, unbounded vector, or anything a caller
//!   implements).
//! * [`export`] — Chrome trace-event / Perfetto JSON (one track per node,
//!   flow arrows for message flight) and a compact JSONL form, plus a
//!   schema validator the CI gate round-trips exports through.
//! * [`recorder`] + [`series`] — the always-on-when-armed flight recorder
//!   (a bounded ring of recent events per node, dumped into stall
//!   diagnoses) and the interval metrics sampler's time-series container
//!   (CSV/JSON).
//!
//! The crate is deliberately passive — no globals, no I/O, no clocks — so
//! the zero-cost-when-off guarantee lives entirely in the machine's single
//! `Option` test around each emission site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod export;
pub mod filter;
pub mod record;
pub mod recorder;
pub mod ring;
pub mod series;
pub mod sink;

pub use filter::TraceFilter;
pub use record::{CrashEv, MsgMeta, RecData, ResourceEv, StateChange, SyncOp, TraceRecord};
pub use recorder::FlightRecorder;
pub use ring::Ring;
pub use series::TimeSeries;
pub use sink::{RingSink, TraceSink, VecSink};

//! The structured trace record: one observable thing the machine did.

use lrc_mesh::MsgClass;
use lrc_sim::{Cycle, NodeId};

/// Protocol-agnostic description of one message, as the trace sees it.
/// The machine maps its `MsgKind` onto this — the trace layer must not
/// depend on the protocol crate (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Stable variant name (`"ReadReq"`, `"WriteNotice"`, …).
    pub name: &'static str,
    /// Coarse message class (request / response / notice / sync / link).
    pub class: MsgClass,
    /// The line the message concerns (sync messages have none).
    pub line: Option<u64>,
    /// Wire size in bytes under the machine's cost model.
    pub bytes: u64,
}

/// A synchronization operation, as seen at the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// A lock acquire was issued (the request left the processor).
    AcquireStart,
    /// The lock grant arrived and acquire-time invalidations finished.
    AcquireDone,
    /// A lock release was issued (its fence, if any, had cleared).
    Release,
    /// The processor arrived at a barrier.
    BarrierArrive,
    /// The barrier released this processor.
    BarrierDone,
}

impl SyncOp {
    /// Stable lowercase name for rendering and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SyncOp::AcquireStart => "acquire-start",
            SyncOp::AcquireDone => "acquire-done",
            SyncOp::Release => "release",
            SyncOp::BarrierArrive => "barrier-arrive",
            SyncOp::BarrierDone => "barrier-done",
        }
    }
}

/// A cache-line protocol state transition at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateChange {
    /// The line was installed (or upgraded) in the local cache.
    Install {
        /// Resulting permission, rendered (`"ro"` / `"rw"`).
        state: &'static str,
    },
    /// The local copy was dropped. `eager` distinguishes an
    /// invalidation-on-receipt (SC/ERC) from an acquire-time
    /// self-invalidation (lazy protocols).
    Invalidate {
        /// True for an eager (message-driven) invalidation.
        eager: bool,
    },
}

/// A finite-resource event: the bounded structures pushing back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceEv {
    /// A full NI queue rejected a send.
    NiReject {
        /// Queue occupancy at the rejection.
        occupancy: u32,
        /// Configured capacity.
        cap: u32,
    },
    /// An NI-rejected send re-attempted after its backoff.
    NiRetry,
    /// The home BUSY-NACKed a request racing a busy directory entry.
    BusyNack {
        /// NACKs this requester has now received for the request.
        attempt: u32,
    },
    /// A NACKed request was re-sent after its backoff.
    NackRetry,
    /// A write-notice buffer overflowed into the invalidate-all fallback.
    WnOverflow {
        /// The buffer capacity that was exceeded.
        cap: u32,
    },
}

/// A crash-stop failure or recovery event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashEv {
    /// The recording node crashed (its state vanished this cycle).
    NodeCrashed,
    /// The recording node's lease on `dead` expired: it now treats that
    /// peer as dead.
    SuspectedDead {
        /// The peer declared dead.
        dead: NodeId,
    },
    /// The recording home reclaimed a line whose dirty owner died — the
    /// update is lost.
    DataLoss {
        /// The reclaimed line.
        line: u64,
        /// The dead dirty owner.
        owner: NodeId,
    },
    /// The recording home reclaimed a lock held by (or queued for) a dead
    /// node.
    LockReclaimed {
        /// The lock.
        lock: u64,
    },
    /// The recording home released a dead node's barrier slot.
    BarrierReclaimed {
        /// The barrier.
        barrier: u64,
    },
    /// The recording survivor completed a miss locally because the line's
    /// home or owner died (degraded fill).
    DegradedFill {
        /// The line filled without the home's help.
        line: u64,
    },
}

/// What one record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecData {
    /// A protocol message left `src` for `dst` (recorded at `src`).
    Send {
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: MsgMeta,
    },
    /// A protocol message was received at `dst` (recorded at `dst`).
    Recv {
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: MsgMeta,
    },
    /// A synchronization operation at the recording node.
    Sync {
        /// The operation.
        op: SyncOp,
        /// Lock or barrier id.
        id: u64,
    },
    /// A cache-state transition at the recording node.
    State {
        /// The line.
        line: u64,
        /// The transition.
        change: StateChange,
    },
    /// A finite-resource event at the recording node.
    Resource {
        /// The event.
        ev: ResourceEv,
    },
    /// A crash-stop failure or recovery event at the recording node.
    Crash {
        /// The event.
        ev: CrashEv,
    },
}

/// One trace record. `seq` is a global emission counter: sorting by
/// `(at, seq)` yields a total, deterministic time order even when the
/// machine emits several records in the same cycle (or emits a
/// future-stamped send before an earlier-stamped one — protocol
/// processors run ahead of the event clock inside their occupancy
/// windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the record describes.
    pub at: Cycle,
    /// Global emission sequence number (unique per machine).
    pub seq: u64,
    /// The node the record is attributed to (its track in exports).
    pub node: NodeId,
    /// What happened.
    pub data: RecData,
}

impl TraceRecord {
    /// The line this record concerns, if any.
    pub fn line(&self) -> Option<u64> {
        match self.data {
            RecData::Send { msg, .. } | RecData::Recv { msg, .. } => msg.line,
            RecData::State { line, .. } => Some(line),
            RecData::Crash { ev: CrashEv::DataLoss { line, .. } }
            | RecData::Crash { ev: CrashEv::DegradedFill { line } } => Some(line),
            _ => None,
        }
    }

    /// The message class, for message records.
    pub fn class(&self) -> Option<MsgClass> {
        match self.data {
            RecData::Send { msg, .. } | RecData::Recv { msg, .. } => Some(msg.class),
            _ => None,
        }
    }

    /// Dense category index (send/recv/sync/state/resource), the
    /// [`crate::TraceFilter`] category bit for this record.
    pub fn category_index(&self) -> usize {
        match self.data {
            RecData::Send { .. } => 0,
            RecData::Recv { .. } => 1,
            RecData::Sync { .. } => 2,
            RecData::State { .. } => 3,
            RecData::Resource { .. } => 4,
            RecData::Crash { .. } => 5,
        }
    }

    /// Stable category name in `category_index` order.
    pub fn category(&self) -> &'static str {
        ["send", "recv", "sync", "state", "resource", "crash"][self.category_index()]
    }

    /// Short event name: the message variant, sync op, or resource event.
    pub fn name(&self) -> &'static str {
        match self.data {
            RecData::Send { msg, .. } | RecData::Recv { msg, .. } => msg.name,
            RecData::Sync { op, .. } => op.name(),
            RecData::State { change: StateChange::Install { .. }, .. } => "install",
            RecData::State { change: StateChange::Invalidate { .. }, .. } => "invalidate",
            RecData::Resource { ev } => match ev {
                ResourceEv::NiReject { .. } => "ni-reject",
                ResourceEv::NiRetry => "ni-retry",
                ResourceEv::BusyNack { .. } => "busy-nack",
                ResourceEv::NackRetry => "nack-retry",
                ResourceEv::WnOverflow { .. } => "wn-overflow",
            },
            RecData::Crash { ev } => match ev {
                CrashEv::NodeCrashed => "node-crashed",
                CrashEv::SuspectedDead { .. } => "suspected-dead",
                CrashEv::DataLoss { .. } => "data-loss",
                CrashEv::LockReclaimed { .. } => "lock-reclaimed",
                CrashEv::BarrierReclaimed { .. } => "barrier-reclaimed",
                CrashEv::DegradedFill { .. } => "degraded-fill",
            },
        }
    }
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[t={:>6}] ", self.at)?;
        match self.data {
            RecData::Send { src, dst, msg } => {
                write!(f, "P{src} -> P{dst} {} ({}, {}B", msg.name, msg.class.name(), msg.bytes)?;
                if let Some(l) = msg.line {
                    write!(f, ", line {l}")?;
                }
                write!(f, ")")
            }
            RecData::Recv { src, dst, msg } => {
                write!(f, "P{dst} <- P{src} {}", msg.name)?;
                if let Some(l) = msg.line {
                    write!(f, " (line {l})")?;
                }
                Ok(())
            }
            RecData::Sync { op, id } => write!(f, "P{} {} id={id}", self.node, op.name()),
            RecData::State { line, change } => match change {
                StateChange::Install { state } => {
                    write!(f, "P{} line {line} -> {state}", self.node)
                }
                StateChange::Invalidate { eager } => write!(
                    f,
                    "P{} line {line} invalidated ({})",
                    self.node,
                    if eager { "eager" } else { "acquire" }
                ),
            },
            RecData::Resource { ev } => match ev {
                ResourceEv::NiReject { occupancy, cap } => {
                    write!(f, "P{} NI reject ({occupancy}/{cap} slots)", self.node)
                }
                ResourceEv::NiRetry => write!(f, "P{} NI retry", self.node),
                ResourceEv::BusyNack { attempt } => {
                    write!(f, "P{} BUSY-NACKed (attempt {attempt})", self.node)
                }
                ResourceEv::NackRetry => write!(f, "P{} NACK retry", self.node),
                ResourceEv::WnOverflow { cap } => {
                    write!(f, "P{} write-notice buffer overflow (cap {cap})", self.node)
                }
            },
            RecData::Crash { ev } => match ev {
                CrashEv::NodeCrashed => write!(f, "P{} CRASHED", self.node),
                CrashEv::SuspectedDead { dead } => {
                    write!(f, "P{} declares P{dead} dead (lease expired)", self.node)
                }
                CrashEv::DataLoss { line, owner } => write!(
                    f,
                    "P{} reclaims line {line}: dirty owner P{owner} dead — DATA LOSS",
                    self.node
                ),
                CrashEv::LockReclaimed { lock } => {
                    write!(f, "P{} reclaims lock {lock} from dead holder", self.node)
                }
                CrashEv::BarrierReclaimed { barrier } => {
                    write!(f, "P{} releases dead arrivals at barrier {barrier}", self.node)
                }
                CrashEv::DegradedFill { line } => {
                    write!(f, "P{} degraded fill of line {line} (home/owner dead)", self.node)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(data: RecData) -> TraceRecord {
        TraceRecord { at: 10, seq: 1, node: 2, data }
    }

    #[test]
    fn lines_classes_and_categories() {
        let meta = MsgMeta { name: "ReadReq", class: MsgClass::Request, line: Some(7), bytes: 8 };
        let s = rec(RecData::Send { src: 2, dst: 3, msg: meta });
        assert_eq!(s.line(), Some(7));
        assert_eq!(s.class(), Some(MsgClass::Request));
        assert_eq!(s.category(), "send");
        assert_eq!(s.name(), "ReadReq");

        let y = rec(RecData::Sync { op: SyncOp::Release, id: 4 });
        assert_eq!(y.line(), None);
        assert_eq!(y.class(), None);
        assert_eq!(y.category(), "sync");
        assert_eq!(y.name(), "release");

        let st = rec(RecData::State { line: 9, change: StateChange::Install { state: "ro" } });
        assert_eq!(st.line(), Some(9));
        assert_eq!(st.category(), "state");

        let r = rec(RecData::Resource { ev: ResourceEv::WnOverflow { cap: 4 } });
        assert_eq!(r.category(), "resource");
        assert_eq!(r.name(), "wn-overflow");

        let c = rec(RecData::Crash { ev: CrashEv::DataLoss { line: 11, owner: 3 } });
        assert_eq!(c.category(), "crash");
        assert_eq!(c.name(), "data-loss");
        assert_eq!(c.line(), Some(11));
        let c = rec(RecData::Crash { ev: CrashEv::NodeCrashed });
        assert_eq!(c.name(), "node-crashed");
        assert_eq!(c.line(), None);
        assert_eq!(rec(RecData::Crash { ev: CrashEv::DegradedFill { line: 8 } }).line(), Some(8));
    }

    #[test]
    fn display_renders_every_shape() {
        let meta = MsgMeta { name: "ReadReq", class: MsgClass::Request, line: Some(7), bytes: 8 };
        let text = rec(RecData::Send { src: 2, dst: 3, msg: meta }).to_string();
        assert!(text.contains("P2 -> P3 ReadReq"), "{text}");
        assert!(text.contains("line 7"), "{text}");
        let text = rec(RecData::Recv { src: 2, dst: 3, msg: meta }).to_string();
        assert!(text.contains("P3 <- P2"), "{text}");
        let text = rec(RecData::Resource { ev: ResourceEv::NiReject { occupancy: 1, cap: 1 } })
            .to_string();
        assert!(text.contains("NI reject (1/1"), "{text}");
        let text = rec(RecData::Crash { ev: CrashEv::SuspectedDead { dead: 7 } }).to_string();
        assert!(text.contains("P2 declares P7 dead"), "{text}");
        let text = rec(RecData::Crash { ev: CrashEv::DataLoss { line: 5, owner: 1 } }).to_string();
        assert!(text.contains("DATA LOSS"), "{text}");
    }
}

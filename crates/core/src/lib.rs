//! `lrc-core` — the paper's contribution: four directory-based coherence
//! protocols (sequentially consistent, eager release-consistent, lazy
//! release-consistent, and the lazier "lazy-ext" variant) over a simulated
//! mesh multiprocessor with programmable protocol processors.
//!
//! * [`directory`] — the global block state machine (Figure 1 of the paper).
//! * [`msg`] — the protocol message catalogue and cost model.
//! * [`sync`] — queued locks and counter barriers.
//! * [`node`] — per-node state (caches, buffers, transaction table).
//! * [`machine`] — the event-driven machine tying it all together.
//!
//! # Example
//!
//! ```
//! use lrc_core::Machine;
//! use lrc_sim::{MachineConfig, Op, Protocol, Script};
//!
//! let cfg = MachineConfig::paper_default(2);
//! let w = Script::new(
//!     "handoff",
//!     vec![
//!         vec![Op::Acquire(0), Op::Write(0), Op::Release(0)],
//!         vec![Op::Acquire(0), Op::Read(0), Op::Release(0)],
//!     ],
//! );
//! let result = Machine::new(cfg, Protocol::Lrc).run(Box::new(w));
//! assert!(result.stats.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod directory;
pub mod machine;
pub mod msg;
pub mod node;
pub mod sync;

pub use directory::{nodes_in, AckCollection, DirEntry, DirState, NodeSet};
pub use machine::checker::StuckState;
pub use machine::{
    resume_sharded, try_run_sharded, try_run_sharded_until, Fault, Machine, MachineSnapshot,
    ParallelOptions, Partition, RunResult, ShardedCheckpoint, ShardedRunOutcome, SnapshotError,
    SnapshotRunError, SymbolicMemory, Violation, MIN_SNAPSHOT_VERSION, SNAPSHOT_VERSION,
};
pub use msg::{Msg, MsgKind, WriteGrant};
// Fault-injection vocabulary, re-exported so harnesses need only lrc-core.
pub use lrc_mesh::{CrashPlan, FaultCounters, FaultPlan, FaultRates, MsgClass};
// Observability vocabulary, likewise.
pub use lrc_trace::{
    FlightRecorder, MsgMeta, RecData, ResourceEv, RingSink, StateChange, SyncOp, TimeSeries,
    TraceFilter, TraceRecord, TraceSink, VecSink,
};
pub use lrc_sim::{StallDiagnosis, StallReason, StalledProc};
pub use node::{Node, Outstanding, PendingSync, ProcStatus};
pub use sync::{BarrierManager, LockAction, LockManager};

//! The distributed directory: one entry per cache block, held at the block's
//! home node.
//!
//! The paper's Figure 1 gives the global state machine:
//!
//! ```text
//!              read                     write
//!   Uncached ───────► Shared   Uncached ───────► Dirty
//!
//!              write (only sharer)               write (others share)
//!   Shared ───────► Dirty           Shared ───────► Weak  + send notices
//!
//!              read/write by another
//!   Dirty ───────► Weak  + notice to the writer
//!
//!              last writer leaves              last sharer leaves
//!   Weak ───────► Shared            Shared ───────► Uncached
//! ```
//!
//! State is **derived** from the sharer and writer sets rather than stored,
//! which makes the "counters match the bitmasks" invariant structural:
//!
//! * `Uncached` — no sharers.
//! * `Shared`   — ≥ 1 sharer, no writers.
//! * `Dirty`    — exactly one sharer, who is also a writer.
//! * `Weak`     — ≥ 2 sharers with ≥ 1 writer (lazy protocols only).
//!
//! Each entry also carries the per-sharer *notified* bits ("this processor
//! has been told the block is weak") and the in-flight acknowledgement
//! collection used when a weak transition fans out write notices (the paper
//! collects acks at the home and acknowledges all pending writers at once).

use lrc_sim::NodeId;

/// Global (directory) state of a block. Derived from the sharer/writer sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies.
    Uncached,
    /// Cached read-only by one or more processors.
    Shared,
    /// Cached by exactly one processor, which is writing it.
    Dirty,
    /// Cached by two or more processors, at least one of which is writing.
    Weak,
}

/// An in-progress acknowledgement collection (invalidation acks for the
/// eager protocols, write-notice acks for the lazy ones). The home collects
/// them and then releases every waiter with a single ack apiece.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AckCollection {
    /// Acks still outstanding.
    pub awaiting: u32,
    /// Requesters to notify when the collection completes.
    pub waiters: Vec<NodeId>,
}

/// Directory entry for one block.
#[derive(Debug, Clone, Default)]
pub struct DirEntry {
    sharers: u64,
    writers: u64,
    notified: u64,
    /// Outstanding ack collection, if any.
    pub pending: Option<AckCollection>,
    /// A 3-hop forward is in flight (eager protocols): the home must not
    /// process further requests for this block until the owner's
    /// `CopyBack` or `ForwardNack` arrives, or ownership could rotate
    /// among requesters that never received data (a NACK livelock).
    pub busy: bool,
    /// Limited-pointer directories: more sharers than pointers — precise
    /// membership is lost and coherence actions must broadcast. Cleared
    /// when the block returns to Uncached.
    pub overflow: bool,
}

impl DirEntry {
    /// A fresh entry (Uncached).
    pub fn new() -> Self {
        DirEntry::default()
    }

    /// Current derived state.
    pub fn state(&self) -> DirState {
        if self.sharers == 0 {
            DirState::Uncached
        } else if self.writers == 0 {
            DirState::Shared
        } else if self.sharers.count_ones() == 1 {
            debug_assert_eq!(self.sharers, self.writers);
            DirState::Dirty
        } else {
            DirState::Weak
        }
    }

    /// Bitmask of processors caching the block.
    pub fn sharers(&self) -> u64 {
        self.sharers
    }

    /// Bitmask of processors writing the block (⊆ sharers).
    pub fn writers(&self) -> u64 {
        self.writers
    }

    /// Bitmask of sharers already told the block is weak (⊆ sharers).
    pub fn notified(&self) -> u64 {
        self.notified
    }

    /// Number of processors caching the block.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Number of processors writing the block.
    pub fn writer_count(&self) -> u32 {
        self.writers.count_ones()
    }

    /// Is `node` a sharer?
    pub fn is_sharer(&self, node: NodeId) -> bool {
        self.sharers & (1 << node) != 0
    }

    /// Is `node` a writer?
    pub fn is_writer(&self, node: NodeId) -> bool {
        self.writers & (1 << node) != 0
    }

    /// Is `node` recorded as notified of the weak state?
    pub fn is_notified(&self, node: NodeId) -> bool {
        self.notified & (1 << node) != 0
    }

    /// The single owner when the block is [`DirState::Dirty`].
    pub fn dirty_owner(&self) -> Option<NodeId> {
        if self.state() == DirState::Dirty {
            Some(self.writers.trailing_zeros() as NodeId)
        } else {
            None
        }
    }

    /// Add `node` as a reader.
    pub fn add_sharer(&mut self, node: NodeId) {
        self.sharers |= 1 << node;
        self.check();
    }

    /// Add `node` as a reader under a `k`-pointer limited directory:
    /// sets the overflow bit when the sharer count exceeds the pointers.
    pub fn add_sharer_limited(&mut self, node: NodeId, pointers: usize) {
        self.add_sharer(node);
        if self.sharer_count() as usize > pointers {
            self.overflow = true;
        }
    }

    /// Add `node` as a writer (implies sharer).
    pub fn add_writer(&mut self, node: NodeId) {
        self.sharers |= 1 << node;
        self.writers |= 1 << node;
        self.check();
    }

    /// Record that `node` has been told the block is weak.
    pub fn mark_notified(&mut self, node: NodeId) {
        debug_assert!(self.is_sharer(node), "notified must be a sharer");
        self.notified |= 1 << node;
        self.check();
    }

    /// Remove `node` entirely (invalidation at acquire, eviction, or an
    /// eager-protocol invalidation). Reverts Weak→Shared / →Uncached
    /// automatically because state is derived; an overflowed
    /// limited-pointer entry regains precision only at Uncached.
    pub fn remove(&mut self, node: NodeId) {
        let m = !(1u64 << node);
        self.sharers &= m;
        self.writers &= m;
        self.notified &= m;
        if self.sharers == 0 {
            self.overflow = false;
        }
        self.check();
    }

    /// Demote `node` from writer to plain sharer (eager read-forward).
    pub fn demote_writer(&mut self, node: NodeId) {
        self.writers &= !(1u64 << node);
        self.check();
    }

    /// Remove every sharer except `keep` (eager write: invalidation of all
    /// other copies). Returns the bitmask of removed sharers.
    pub fn remove_all_except(&mut self, keep: NodeId) -> u64 {
        let keep_mask = 1u64 << keep;
        let removed = self.sharers & !keep_mask;
        self.sharers &= keep_mask;
        self.writers &= keep_mask;
        self.notified &= keep_mask;
        if self.sharers == 0 {
            self.overflow = false;
        }
        self.check();
        removed
    }

    /// Sharers other than `node` that have *not* yet been notified of the
    /// weak state: the targets of a new round of write notices.
    pub fn unnotified_others(&self, node: NodeId) -> u64 {
        self.sharers & !self.notified & !(1u64 << node)
    }

    /// Structural invariants (debug builds).
    #[inline]
    fn check(&self) {
        debug_assert_eq!(self.writers & !self.sharers, 0, "writers ⊆ sharers");
        debug_assert_eq!(self.notified & !self.sharers, 0, "notified ⊆ sharers");
    }
}

/// Iterate the node ids set in `mask`, ascending.
pub fn nodes_in(mask: u64) -> impl Iterator<Item = NodeId> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let n = m.trailing_zeros() as NodeId;
            m &= m - 1;
            Some(n)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_uncached() {
        let e = DirEntry::new();
        assert_eq!(e.state(), DirState::Uncached);
        assert_eq!(e.sharer_count(), 0);
    }

    #[test]
    fn figure1_read_from_uncached() {
        let mut e = DirEntry::new();
        e.add_sharer(3);
        assert_eq!(e.state(), DirState::Shared);
        e.add_sharer(5);
        assert_eq!(e.state(), DirState::Shared);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn figure1_write_from_uncached_goes_dirty() {
        let mut e = DirEntry::new();
        e.add_writer(2);
        assert_eq!(e.state(), DirState::Dirty);
        assert_eq!(e.dirty_owner(), Some(2));
    }

    #[test]
    fn figure1_write_by_only_sharer_goes_dirty() {
        let mut e = DirEntry::new();
        e.add_sharer(1);
        e.add_writer(1);
        assert_eq!(e.state(), DirState::Dirty);
    }

    #[test]
    fn figure1_write_with_other_sharers_goes_weak() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_sharer(1);
        e.add_writer(1);
        assert_eq!(e.state(), DirState::Weak);
        assert_eq!(e.unnotified_others(1), 1 << 0);
    }

    #[test]
    fn figure1_read_of_dirty_goes_weak() {
        let mut e = DirEntry::new();
        e.add_writer(4);
        e.add_sharer(7);
        assert_eq!(e.state(), DirState::Weak);
        // The current writer is the one that must be notified.
        assert_eq!(e.unnotified_others(7), 1 << 4);
    }

    #[test]
    fn weak_reverts_to_shared_then_uncached() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_writer(1);
        e.add_writer(2);
        assert_eq!(e.state(), DirState::Weak);
        e.remove(1);
        assert_eq!(e.state(), DirState::Weak); // still writer 2 + sharer 0
        e.remove(2);
        assert_eq!(e.state(), DirState::Shared);
        e.remove(0);
        assert_eq!(e.state(), DirState::Uncached);
    }

    #[test]
    fn notified_is_cleared_on_removal() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_writer(1);
        e.mark_notified(0);
        assert!(e.is_notified(0));
        assert_eq!(e.unnotified_others(1), 0);
        e.remove(0);
        assert!(!e.is_notified(0));
    }

    #[test]
    fn notices_sent_once_per_sharer() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_sharer(1);
        e.add_writer(2);
        assert_eq!(e.state(), DirState::Weak);
        assert_eq!(e.unnotified_others(2), 0b11);
        e.mark_notified(0);
        e.mark_notified(1);
        // Second writer arrives: nobody new to notify except... writer 2,
        // which has not been notified.
        e.add_writer(3);
        assert_eq!(e.unnotified_others(3), 1 << 2);
    }

    #[test]
    fn demote_writer_on_read_forward() {
        let mut e = DirEntry::new();
        e.add_writer(5);
        e.add_sharer(6);
        e.demote_writer(5);
        assert_eq!(e.state(), DirState::Shared);
        assert!(e.is_sharer(5) && e.is_sharer(6));
    }

    #[test]
    fn remove_all_except_for_eager_write() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_sharer(1);
        e.add_sharer(2);
        let removed = e.remove_all_except(1);
        assert_eq!(removed, 0b101);
        assert_eq!(e.sharers(), 0b010);
        e.add_writer(1);
        assert_eq!(e.state(), DirState::Dirty);
    }

    #[test]
    fn counters_match_popcounts() {
        let mut e = DirEntry::new();
        for n in [0usize, 3, 7, 12, 63] {
            e.add_sharer(n);
        }
        e.add_writer(7);
        assert_eq!(e.sharer_count(), 5);
        assert_eq!(e.writer_count(), 1);
        assert_eq!(e.sharers().count_ones(), e.sharer_count());
        assert_eq!(e.writers().count_ones(), e.writer_count());
    }

    #[test]
    fn nodes_in_iterates_ascending() {
        let v: Vec<_> = nodes_in(0b1010_0110).collect();
        assert_eq!(v, vec![1, 2, 5, 7]);
        assert_eq!(nodes_in(0).count(), 0);
        assert_eq!(nodes_in(1 << 63).collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn dirty_owner_only_when_dirty() {
        let mut e = DirEntry::new();
        assert_eq!(e.dirty_owner(), None);
        e.add_sharer(2);
        assert_eq!(e.dirty_owner(), None);
        e.add_writer(2);
        assert_eq!(e.dirty_owner(), Some(2));
        e.add_sharer(3);
        assert_eq!(e.dirty_owner(), None); // weak now
    }
}

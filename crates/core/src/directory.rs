//! The distributed directory: one entry per cache block, held at the block's
//! home node.
//!
//! The paper's Figure 1 gives the global state machine:
//!
//! ```text
//!              read                     write
//!   Uncached ───────► Shared   Uncached ───────► Dirty
//!
//!              write (only sharer)               write (others share)
//!   Shared ───────► Dirty           Shared ───────► Weak  + send notices
//!
//!              read/write by another
//!   Dirty ───────► Weak  + notice to the writer
//!
//!              last writer leaves              last sharer leaves
//!   Weak ───────► Shared            Shared ───────► Uncached
//! ```
//!
//! State is **derived** from the sharer and writer sets rather than stored,
//! which makes the "counters match the bitmasks" invariant structural:
//!
//! * `Uncached` — no sharers.
//! * `Shared`   — ≥ 1 sharer, no writers.
//! * `Dirty`    — exactly one sharer, who is also a writer.
//! * `Weak`     — ≥ 2 sharers with ≥ 1 writer (lazy protocols only).
//!
//! Each entry also carries the per-sharer *notified* bits ("this processor
//! has been told the block is weak") and the in-flight acknowledgement
//! collection used when a weak transition fans out write notices (the paper
//! collects acks at the home and acknowledges all pending writers at once).

use lrc_sim::NodeId;

/// A set of node ids, wide enough for the largest supported machine
/// (256 nodes — a 16×16 mesh). Semantically a plain bitmask; it replaces
/// the former single-`u64` sharer masks so directories scale past 64
/// processors without changing any set algebra at the call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct NodeSet([u64; 4]);

impl NodeSet {
    /// Maximum node id + 1 a set can represent.
    pub const CAPACITY: usize = 256;
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet([0; 4]);

    /// The singleton set `{node}`.
    #[inline]
    pub fn one(node: NodeId) -> Self {
        let mut s = NodeSet::EMPTY;
        s.insert(node);
        s
    }

    /// The set `{0, 1, …, n-1}` — every node of an `n`-processor machine.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "NodeSet holds at most {} nodes", Self::CAPACITY);
        let mut s = NodeSet::EMPTY;
        for (i, limb) in s.0.iter_mut().enumerate() {
            let lo = i * 64;
            *limb = if n >= lo + 64 {
                u64::MAX
            } else if n > lo {
                (1u64 << (n - lo)) - 1
            } else {
                0
            };
        }
        s
    }

    /// Is `node` in the set?
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.0[node / 64] & (1u64 << (node % 64)) != 0
    }

    /// Add `node`.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        self.0[node / 64] |= 1u64 << (node % 64);
    }

    /// Remove `node`.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        self.0[node / 64] &= !(1u64 << (node % 64));
    }

    /// True when no node is in the set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == [0u64; 4]
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|l| l.count_ones()).sum()
    }

    /// Smallest node id in the set, if any.
    #[inline]
    pub fn first(&self) -> Option<NodeId> {
        for (i, limb) in self.0.iter().enumerate() {
            if *limb != 0 {
                return Some(i * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }
}

impl std::ops::BitAnd for NodeSet {
    type Output = NodeSet;
    #[inline]
    fn bitand(self, rhs: NodeSet) -> NodeSet {
        NodeSet([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl std::ops::BitOr for NodeSet {
    type Output = NodeSet;
    #[inline]
    fn bitor(self, rhs: NodeSet) -> NodeSet {
        NodeSet([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl std::ops::Not for NodeSet {
    type Output = NodeSet;
    /// Complement over the full 256-bit capacity; intersect with a machine's
    /// node set (e.g. `Machine::all_nodes_mask`) before iterating.
    #[inline]
    fn not(self) -> NodeSet {
        NodeSet([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl std::ops::BitAndAssign for NodeSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: NodeSet) {
        *self = *self & rhs;
    }
}

impl std::ops::BitOrAssign for NodeSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: NodeSet) {
        *self = *self | rhs;
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl std::fmt::Binary for NodeSet {
    /// Renders like the binary of the old `u64` masks (no leading zeros),
    /// so directory dumps and violation reports keep their shape.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                write!(f, "{limb:064b}")?;
            } else if *limb != 0 {
                write!(f, "{limb:b}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Global (directory) state of a block. Derived from the sharer/writer sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies.
    Uncached,
    /// Cached read-only by one or more processors.
    Shared,
    /// Cached by exactly one processor, which is writing it.
    Dirty,
    /// Cached by two or more processors, at least one of which is writing.
    Weak,
}

/// An in-progress acknowledgement collection (invalidation acks for the
/// eager protocols, write-notice acks for the lazy ones). The home collects
/// them and then releases every waiter with a single ack apiece.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AckCollection {
    /// Acks still outstanding.
    pub awaiting: u32,
    /// Requesters to notify when the collection completes.
    pub waiters: Vec<NodeId>,
    /// The nodes the outstanding acks are owed by, as a multiset (overflow
    /// broadcasts can owe one node two acks across joined rounds), with
    /// `from.len() == awaiting` at all times. Crash recovery uses this to
    /// forge exactly the acks a dead node can never send.
    pub from: Vec<NodeId>,
}

impl AckCollection {
    /// Remove one owed ack from `node`. Returns false when none was owed
    /// (a stray or already-forged ack).
    pub fn take_owed(&mut self, node: NodeId) -> bool {
        match self.from.iter().position(|&n| n == node) {
            Some(i) => {
                self.from.remove(i);
                true
            }
            None => false,
        }
    }
}

/// Directory entry for one block.
#[derive(Debug, Clone, Default)]
pub struct DirEntry {
    sharers: NodeSet,
    writers: NodeSet,
    notified: NodeSet,
    /// Outstanding ack collection, if any.
    pub pending: Option<AckCollection>,
    /// A 3-hop forward is in flight (eager protocols): the home must not
    /// process further requests for this block until the owner's
    /// `CopyBack` or `ForwardNack` arrives, or ownership could rotate
    /// among requesters that never received data (a NACK livelock).
    pub busy: bool,
    /// Limited-pointer directories: more sharers than pointers — precise
    /// membership is lost and coherence actions must broadcast. Cleared
    /// when the block returns to Uncached.
    pub overflow: bool,
}

impl DirEntry {
    /// A fresh entry (Uncached).
    pub fn new() -> Self {
        DirEntry::default()
    }

    /// Rebuild an entry from checkpointed parts. Fails when the structural
    /// invariants (writers ⊆ sharers, notified ⊆ sharers) do not hold —
    /// corrupt checkpoints surface as typed errors, not debug panics.
    pub fn from_parts(
        sharers: NodeSet,
        writers: NodeSet,
        notified: NodeSet,
        pending: Option<AckCollection>,
        busy: bool,
        overflow: bool,
    ) -> Result<Self, String> {
        if !(writers & !sharers).is_empty() {
            return Err("directory entry: writers must be a subset of sharers".into());
        }
        if !(notified & !sharers).is_empty() {
            return Err("directory entry: notified must be a subset of sharers".into());
        }
        Ok(DirEntry { sharers, writers, notified, pending, busy, overflow })
    }

    /// Current derived state.
    pub fn state(&self) -> DirState {
        if self.sharers.is_empty() {
            DirState::Uncached
        } else if self.writers.is_empty() {
            DirState::Shared
        } else if self.sharers.count_ones() == 1 {
            debug_assert_eq!(self.sharers, self.writers);
            DirState::Dirty
        } else {
            DirState::Weak
        }
    }

    /// Set of processors caching the block.
    pub fn sharers(&self) -> NodeSet {
        self.sharers
    }

    /// Set of processors writing the block (⊆ sharers).
    pub fn writers(&self) -> NodeSet {
        self.writers
    }

    /// Sharers already told the block is weak (⊆ sharers).
    pub fn notified(&self) -> NodeSet {
        self.notified
    }

    /// Number of processors caching the block.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Number of processors writing the block.
    pub fn writer_count(&self) -> u32 {
        self.writers.count_ones()
    }

    /// Is `node` a sharer?
    pub fn is_sharer(&self, node: NodeId) -> bool {
        self.sharers.contains(node)
    }

    /// Is `node` a writer?
    pub fn is_writer(&self, node: NodeId) -> bool {
        self.writers.contains(node)
    }

    /// Is `node` recorded as notified of the weak state?
    pub fn is_notified(&self, node: NodeId) -> bool {
        self.notified.contains(node)
    }

    /// The single owner when the block is [`DirState::Dirty`].
    pub fn dirty_owner(&self) -> Option<NodeId> {
        if self.state() == DirState::Dirty {
            self.writers.first()
        } else {
            None
        }
    }

    /// Add `node` as a reader.
    pub fn add_sharer(&mut self, node: NodeId) {
        self.sharers.insert(node);
        self.check();
    }

    /// Add `node` as a reader under a `k`-pointer limited directory:
    /// sets the overflow bit when the sharer count exceeds the pointers.
    pub fn add_sharer_limited(&mut self, node: NodeId, pointers: usize) {
        self.add_sharer(node);
        if self.sharer_count() as usize > pointers {
            self.overflow = true;
        }
    }

    /// Add `node` as a writer (implies sharer).
    pub fn add_writer(&mut self, node: NodeId) {
        self.sharers.insert(node);
        self.writers.insert(node);
        self.check();
    }

    /// Record that `node` has been told the block is weak.
    pub fn mark_notified(&mut self, node: NodeId) {
        debug_assert!(self.is_sharer(node), "notified must be a sharer");
        self.notified.insert(node);
        self.check();
    }

    /// Remove `node` entirely (invalidation at acquire, eviction, or an
    /// eager-protocol invalidation). Reverts Weak→Shared / →Uncached
    /// automatically because state is derived; an overflowed
    /// limited-pointer entry regains precision only at Uncached.
    pub fn remove(&mut self, node: NodeId) {
        self.sharers.remove(node);
        self.writers.remove(node);
        self.notified.remove(node);
        if self.sharers.is_empty() {
            self.overflow = false;
        }
        self.check();
    }

    /// Demote `node` from writer to plain sharer (eager read-forward).
    pub fn demote_writer(&mut self, node: NodeId) {
        self.writers.remove(node);
        self.check();
    }

    /// Remove every sharer except `keep` (eager write: invalidation of all
    /// other copies). Returns the set of removed sharers.
    pub fn remove_all_except(&mut self, keep: NodeId) -> NodeSet {
        let keep_mask = NodeSet::one(keep);
        let removed = self.sharers & !keep_mask;
        self.sharers &= keep_mask;
        self.writers &= keep_mask;
        self.notified &= keep_mask;
        if self.sharers.is_empty() {
            self.overflow = false;
        }
        self.check();
        removed
    }

    /// Sharers other than `node` that have *not* yet been notified of the
    /// weak state: the targets of a new round of write notices.
    pub fn unnotified_others(&self, node: NodeId) -> NodeSet {
        self.sharers & !self.notified & !NodeSet::one(node)
    }

    /// Structural invariants (debug builds).
    #[inline]
    fn check(&self) {
        debug_assert!((self.writers & !self.sharers).is_empty(), "writers ⊆ sharers");
        debug_assert!((self.notified & !self.sharers).is_empty(), "notified ⊆ sharers");
    }
}

/// Iterate the node ids set in `mask`, ascending. A hand-rolled word loop
/// (rather than a `flat_map` chain) because write-notice and invalidation
/// fan-out sits on the simulator's hottest path: `next` clears one bit and
/// only advances limbs when the current one drains.
pub fn nodes_in(mask: NodeSet) -> NodesIn {
    NodesIn { limbs: mask.0, i: 0 }
}

/// Ascending iterator over a [`NodeSet`] (see [`nodes_in`]).
#[derive(Debug, Clone)]
pub struct NodesIn {
    limbs: [u64; 4],
    i: usize,
}

impl Iterator for NodesIn {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.i < self.limbs.len() {
            let limb = self.limbs[self.i];
            if limb != 0 {
                let n = self.i * 64 + limb.trailing_zeros() as usize;
                self.limbs[self.i] = limb & (limb - 1);
                return Some(n);
            }
            self.i += 1;
        }
        None
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.limbs[self.i..].iter().map(|l| l.count_ones() as usize).sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodesIn {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_uncached() {
        let e = DirEntry::new();
        assert_eq!(e.state(), DirState::Uncached);
        assert_eq!(e.sharer_count(), 0);
    }

    #[test]
    fn figure1_read_from_uncached() {
        let mut e = DirEntry::new();
        e.add_sharer(3);
        assert_eq!(e.state(), DirState::Shared);
        e.add_sharer(5);
        assert_eq!(e.state(), DirState::Shared);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn figure1_write_from_uncached_goes_dirty() {
        let mut e = DirEntry::new();
        e.add_writer(2);
        assert_eq!(e.state(), DirState::Dirty);
        assert_eq!(e.dirty_owner(), Some(2));
    }

    #[test]
    fn figure1_write_by_only_sharer_goes_dirty() {
        let mut e = DirEntry::new();
        e.add_sharer(1);
        e.add_writer(1);
        assert_eq!(e.state(), DirState::Dirty);
    }

    #[test]
    fn figure1_write_with_other_sharers_goes_weak() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_sharer(1);
        e.add_writer(1);
        assert_eq!(e.state(), DirState::Weak);
        assert_eq!(e.unnotified_others(1), NodeSet::one(0));
    }

    #[test]
    fn figure1_read_of_dirty_goes_weak() {
        let mut e = DirEntry::new();
        e.add_writer(4);
        e.add_sharer(7);
        assert_eq!(e.state(), DirState::Weak);
        // The current writer is the one that must be notified.
        assert_eq!(e.unnotified_others(7), NodeSet::one(4));
    }

    #[test]
    fn weak_reverts_to_shared_then_uncached() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_writer(1);
        e.add_writer(2);
        assert_eq!(e.state(), DirState::Weak);
        e.remove(1);
        assert_eq!(e.state(), DirState::Weak); // still writer 2 + sharer 0
        e.remove(2);
        assert_eq!(e.state(), DirState::Shared);
        e.remove(0);
        assert_eq!(e.state(), DirState::Uncached);
    }

    #[test]
    fn notified_is_cleared_on_removal() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_writer(1);
        e.mark_notified(0);
        assert!(e.is_notified(0));
        assert_eq!(e.unnotified_others(1), NodeSet::EMPTY);
        e.remove(0);
        assert!(!e.is_notified(0));
    }

    #[test]
    fn notices_sent_once_per_sharer() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_sharer(1);
        e.add_writer(2);
        assert_eq!(e.state(), DirState::Weak);
        assert_eq!(e.unnotified_others(2), NodeSet::from_iter([0, 1]));
        e.mark_notified(0);
        e.mark_notified(1);
        // Second writer arrives: nobody new to notify except... writer 2,
        // which has not been notified.
        e.add_writer(3);
        assert_eq!(e.unnotified_others(3), NodeSet::one(2));
    }

    #[test]
    fn demote_writer_on_read_forward() {
        let mut e = DirEntry::new();
        e.add_writer(5);
        e.add_sharer(6);
        e.demote_writer(5);
        assert_eq!(e.state(), DirState::Shared);
        assert!(e.is_sharer(5) && e.is_sharer(6));
    }

    #[test]
    fn remove_all_except_for_eager_write() {
        let mut e = DirEntry::new();
        e.add_sharer(0);
        e.add_sharer(1);
        e.add_sharer(2);
        let removed = e.remove_all_except(1);
        assert_eq!(removed, NodeSet::from_iter([0, 2]));
        assert_eq!(e.sharers(), NodeSet::one(1));
        e.add_writer(1);
        assert_eq!(e.state(), DirState::Dirty);
    }

    #[test]
    fn counters_match_popcounts() {
        let mut e = DirEntry::new();
        for n in [0usize, 3, 7, 12, 63] {
            e.add_sharer(n);
        }
        e.add_writer(7);
        assert_eq!(e.sharer_count(), 5);
        assert_eq!(e.writer_count(), 1);
        assert_eq!(e.sharers().count_ones(), e.sharer_count());
        assert_eq!(e.writers().count_ones(), e.writer_count());
    }

    #[test]
    fn nodes_in_iterates_ascending() {
        let v: Vec<_> = nodes_in(NodeSet::from_iter([1, 2, 5, 7])).collect();
        assert_eq!(v, vec![1, 2, 5, 7]);
        assert_eq!(nodes_in(NodeSet::EMPTY).count(), 0);
        assert_eq!(nodes_in(NodeSet::one(63)).collect::<Vec<_>>(), vec![63]);
        assert_eq!(nodes_in(NodeSet::one(255)).collect::<Vec<_>>(), vec![255]);
    }

    #[test]
    fn dirty_owner_only_when_dirty() {
        let mut e = DirEntry::new();
        assert_eq!(e.dirty_owner(), None);
        e.add_sharer(2);
        assert_eq!(e.dirty_owner(), None);
        e.add_writer(2);
        assert_eq!(e.dirty_owner(), Some(2));
        e.add_sharer(3);
        assert_eq!(e.dirty_owner(), None); // weak now
    }
}

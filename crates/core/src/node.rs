//! Per-node simulation state: the processor's execution status, the node's
//! memory-system components, the protocol processor's local tables, and the
//! outstanding-transaction table (the equivalent of DASH RAC entries).

use crate::sync::{BarrierManager, LockManager};
use lrc_mem::{Bus, Cache, CoalescingBuffer, MemoryModule, TimedResource, WriteBuffer};
use lrc_sim::{
    BarrierId, Cycle, FxHashMap, FxHashSet, LineAddr, LockId, MachineConfig, Op, Protocol,
    StallKind,
};

/// Why a processor is not currently issuing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcStatus {
    /// Issuing operations (a `ProcStep` event is or will be scheduled).
    Running,
    /// Blocked on a read miss to this line.
    StalledRead(LineAddr),
    /// Blocked because the write buffer was full when this write was issued.
    StalledWriteFull,
    /// SC only: blocked until the current write transaction completes.
    StalledWrite(LineAddr),
    /// Performing the release fence before a lock release or barrier
    /// arrival: waiting for buffers and outstanding transactions to drain.
    Releasing(PendingSync),
    /// Waiting for a lock grant (and, lazy protocols, for the acquire-time
    /// invalidations to finish).
    WaitingLock(LockId),
    /// Waiting for the barrier release broadcast.
    InBarrier(BarrierId),
    /// Executed `Done`.
    Finished,
    // (Appended last: the derived `Hash` folds the variant index, and the
    // checker fingerprints depend on the indices above staying put.)
    /// Crash-stop victim: the node's state vanished and it will never
    /// issue, send, or receive again.
    Crashed,
}

/// What to do once the release fence completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PendingSync {
    /// Send `LockRel` and continue.
    LockRelease(LockId),
    /// Send `BarrierArrive` and wait in the barrier.
    Barrier(BarrierId),
}

/// An outstanding coherence transaction for one line (RAC entry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Outstanding {
    /// A data reply (read or write fill) is still expected.
    pub waiting_data: bool,
    /// A final `WriteAck` (collection completion) is still expected.
    pub waiting_ack: bool,
    /// The `WriteAck` overtook the `WriteReply{Pending}` that announces it
    /// (the reply can lag behind on the home's memory access): remember it
    /// so the late reply doesn't wait for an ack that already came.
    pub early_ack: bool,
    /// The stalled processor should resume when data arrives (read miss or
    /// SC write miss).
    pub resume_proc: bool,
    /// A write-buffer entry retires when this transaction's reply arrives.
    pub retire_wb: bool,
    /// Words to commit to the cache when the transaction's data/grant
    /// arrives (SC blocking writes).
    pub apply_words: u64,
    /// An invalidation (eager) or write notice (lazy) arrived while the
    /// fill was in flight — the RAC race. The fill satisfies the one
    /// waiting access, then the copy is dropped (eager) or queued for
    /// acquire-time invalidation (lazy).
    pub stale_on_fill: bool,
}

impl Outstanding {
    /// Transaction fully complete (entry can be deallocated)?
    pub fn done(&self) -> bool {
        !self.waiting_data && !self.waiting_ack
    }
}

/// All state co-located at one node of the machine.
#[derive(Debug, Clone)]
pub struct Node {
    /// The processor's execution status.
    pub status: ProcStatus,
    /// When the current stall began (for cycle attribution).
    pub stall_start: Cycle,
    /// Which bucket the current stall belongs to.
    pub stall_kind: StallKind,
    /// Operation that could not be issued and must be retried on resume.
    pub deferred_op: Option<Op>,
    /// True when a `ProcStep` event is already queued for this processor.
    pub step_scheduled: bool,

    /// Data cache.
    pub cache: Cache,
    /// Processor write buffer (relaxed protocols; unused under SC).
    pub wb: WriteBuffer,
    /// Coalescing write-through buffer (lazy protocols).
    pub cb: CoalescingBuffer,
    /// This node's slice of main memory.
    pub mem: MemoryModule,
    /// Local bus (cache-fill path).
    pub bus: Bus,
    /// Protocol processor occupancy.
    pub pp: TimedResource,

    /// Outstanding transactions by line. Fx-hashed (iteration order is
    /// arbitrary; every order-sensitive consumer sorts).
    pub outstanding: FxHashMap<u64, Outstanding>,
    /// Lines to invalidate at the next acquire (lazy protocols): received
    /// write notices and weak-flagged fills. Processed in ascending line
    /// order (`process_pending_invals` sorts its batch).
    pub pending_invals: FxHashSet<u64>,
    /// Conservative overflow fallback (finite write-notice buffers only):
    /// the pending-inval set hit its cap, so the next acquire invalidates
    /// *every* cached shared line instead of a precise list. Set ⇒
    /// `pending_invals` is empty (the set collapsed into this bit).
    pub inval_all: bool,
    /// Lazy-ext: writes whose notices are deferred to the next release,
    /// keyed by line, value = accumulated dirty-word mask. Flushed in
    /// ascending line order (`flush_release_buffers` sorts).
    pub delayed_writes: FxHashMap<u64, u64>,
    /// Write-throughs sent but not yet acknowledged.
    pub wt_unacked: u32,
    /// Write-backs sent but not yet acknowledged.
    pub wbk_unacked: u32,
    /// Completion time of the most recent acquire-time invalidation batch.
    pub inval_done_at: Cycle,
    /// Forwards (eager 3-hop) that arrived while this node's own data for
    /// the line was still in flight: served as soon as the fill lands,
    /// instead of NACKing a copy that is about to exist ("phantom owner").
    pub parked_forwards: FxHashMap<u64, crate::msg::Msg>,

    /// Lock service for locks homed here.
    pub locks: LockManager,
    /// Barrier service for barriers homed here.
    pub barriers: BarrierManager,
}

impl Node {
    /// Build a node for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        Node {
            status: ProcStatus::Running,
            stall_start: 0,
            stall_kind: StallKind::Cpu,
            deferred_op: None,
            step_scheduled: false,
            cache: Cache::new(cfg),
            wb: WriteBuffer::new(cfg.write_buffer_entries),
            cb: CoalescingBuffer::new(cfg.coalescing_buffer_entries),
            mem: MemoryModule::new(cfg),
            bus: Bus::new(cfg),
            pp: TimedResource::new(),
            outstanding: FxHashMap::default(),
            pending_invals: FxHashSet::default(),
            inval_all: false,
            delayed_writes: FxHashMap::default(),
            wt_unacked: 0,
            wbk_unacked: 0,
            inval_done_at: 0,
            parked_forwards: FxHashMap::default(),
            locks: LockManager::new(),
            barriers: BarrierManager::new(),
        }
    }

    /// The release fence condition: every prior write has globally
    /// performed. Exactly the paper's three conditions — write buffer
    /// flushed, outstanding transactions serviced, write-backs/-throughs
    /// acknowledged.
    pub fn fence_clear(&self, protocol: Protocol) -> bool {
        let buffers = self.wb.is_empty()
            && self.outstanding.is_empty()
            && self.wbk_unacked == 0;
        let lazy = !protocol.is_lazy() || (self.cb.is_empty() && self.wt_unacked == 0);
        let ext = protocol != Protocol::LrcExt || self.delayed_writes.is_empty();
        buffers && lazy && ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(&MachineConfig::paper_default(4))
    }

    #[test]
    fn fresh_node_fence_is_clear() {
        let n = node();
        for p in Protocol::ALL {
            assert!(n.fence_clear(p), "{p}");
        }
    }

    #[test]
    fn outstanding_blocks_fence() {
        let mut n = node();
        n.outstanding.insert(3, Outstanding { waiting_ack: true, ..Default::default() });
        assert!(!n.fence_clear(Protocol::Erc));
        n.outstanding.remove(&3);
        assert!(n.fence_clear(Protocol::Erc));
    }

    #[test]
    fn coalescing_buffer_blocks_lazy_fence_only() {
        let mut n = node();
        n.cb.push(LineAddr(1), 0);
        assert!(n.fence_clear(Protocol::Erc));
        assert!(!n.fence_clear(Protocol::Lrc));
        assert!(!n.fence_clear(Protocol::LrcExt));
    }

    #[test]
    fn unacked_write_through_blocks_lazy_fence() {
        let mut n = node();
        n.wt_unacked = 1;
        assert!(!n.fence_clear(Protocol::Lrc));
        assert!(n.fence_clear(Protocol::Sc));
    }

    #[test]
    fn delayed_writes_block_lazy_ext_only() {
        let mut n = node();
        n.delayed_writes.insert(5, 0b1);
        assert!(n.fence_clear(Protocol::Lrc));
        assert!(!n.fence_clear(Protocol::LrcExt));
    }

    #[test]
    fn outstanding_done_logic() {
        let mut o = Outstanding { waiting_data: true, waiting_ack: true, ..Default::default() };
        assert!(!o.done());
        o.waiting_data = false;
        assert!(!o.done());
        o.waiting_ack = false;
        assert!(o.done());
    }
}

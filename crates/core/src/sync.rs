//! Synchronization services: message-based queued locks and a counter
//! barrier, served by the protocol processor at each primitive's home node.
//!
//! Locks are acquire points and unlocks are release points in the RC sense;
//! barriers act as a release (on arrival) plus an acquire (on departure).
//! The managers here are pure state machines — the machine layer charges
//! protocol-processor time and sends the messages they prescribe.

use lrc_sim::{BarrierId, LockId, NodeId};
use std::collections::{HashMap, VecDeque};

/// State of all locks homed at one node (keyed by lock id).
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    locks: HashMap<LockId, LockState>,
}

#[derive(Debug, Clone, Default)]
struct LockState {
    holder: Option<NodeId>,
    queue: VecDeque<NodeId>,
}

/// What the home should do in response to a lock message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockAction {
    /// Send a grant to this node.
    Grant(NodeId),
    /// Nothing to send (requester queued, or lock simply freed).
    None,
}

impl LockManager {
    /// Fresh manager with no locks held.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// A node requests the lock. Returns `Grant(node)` if it is free.
    pub fn acquire(&mut self, lock: LockId, node: NodeId) -> LockAction {
        let st = self.locks.entry(lock).or_default();
        match st.holder {
            None => {
                st.holder = Some(node);
                LockAction::Grant(node)
            }
            Some(_) => {
                st.queue.push_back(node);
                LockAction::None
            }
        }
    }

    /// The holder releases the lock. Returns a grant for the next waiter,
    /// if any.
    pub fn release(&mut self, lock: LockId, node: NodeId) -> LockAction {
        let st = self.locks.entry(lock).or_default();
        debug_assert_eq!(st.holder, Some(node), "release by non-holder");
        match st.queue.pop_front() {
            Some(next) => {
                st.holder = Some(next);
                LockAction::Grant(next)
            }
            None => {
                st.holder = None;
                LockAction::None
            }
        }
    }

    /// Current holder of `lock` (tests / diagnostics).
    pub fn holder(&self, lock: LockId) -> Option<NodeId> {
        self.locks.get(&lock).and_then(|s| s.holder)
    }

    /// Number of nodes queued on `lock`.
    pub fn queue_len(&self, lock: LockId) -> usize {
        self.locks.get(&lock).map_or(0, |s| s.queue.len())
    }

    /// Deterministic snapshot of every lock's state, sorted by lock id —
    /// `(lock, holder, waiters)` — for state fingerprinting. Idle locks
    /// (no holder, empty queue) are omitted so a used-then-freed lock
    /// fingerprints like a never-used one.
    pub fn snapshot(&self) -> Vec<(LockId, Option<NodeId>, Vec<NodeId>)> {
        let mut out: Vec<_> = self
            .locks
            .iter()
            .filter(|(_, s)| s.holder.is_some() || !s.queue.is_empty())
            .map(|(&l, s)| (l, s.holder, s.queue.iter().copied().collect::<Vec<_>>()))
            .collect();
        out.sort_unstable_by_key(|&(l, ..)| l);
        out
    }

    /// Exact checkpoint: like [`LockManager::snapshot`] (sorted by id,
    /// idle locks omitted — an idle entry is behaviorally identical to an
    /// absent one) but the waiter lists preserve FIFO order, which decides
    /// future grants. Restorable via [`LockManager::restore`].
    pub fn save_exact(&self) -> Vec<(LockId, Option<NodeId>, Vec<NodeId>)> {
        self.snapshot()
    }

    /// Replace all lock state with a checkpoint from
    /// [`LockManager::save_exact`].
    pub fn restore(&mut self, locks: &[(LockId, Option<NodeId>, Vec<NodeId>)]) {
        self.locks.clear();
        for (l, holder, queue) in locks {
            self.locks.insert(
                *l,
                LockState { holder: *holder, queue: queue.iter().copied().collect() },
            );
        }
    }

    /// Crash-stop reclamation: expunge `dead` from every lock it holds or
    /// waits on. A lock held by the dead node passes to its next live
    /// waiter; dead waiters are simply dropped. Returns the grants to send
    /// (`(lock, next_holder)`), sorted by lock id for determinism, plus
    /// the number of locks whose dead holder was evicted.
    pub fn purge(&mut self, dead: NodeId) -> (Vec<(LockId, NodeId)>, u64) {
        let mut grants = Vec::new();
        let mut reclaimed = 0u64;
        for (&lock, st) in self.locks.iter_mut() {
            st.queue.retain(|&n| n != dead);
            if st.holder == Some(dead) {
                reclaimed += 1;
                match st.queue.pop_front() {
                    Some(next) => {
                        st.holder = Some(next);
                        grants.push((lock, next));
                    }
                    None => st.holder = None,
                }
            }
        }
        grants.sort_unstable_by_key(|&(l, _)| l);
        (grants, reclaimed)
    }
}

/// State of all barriers homed at one node.
#[derive(Debug, Clone, Default)]
pub struct BarrierManager {
    barriers: HashMap<BarrierId, BarrierState>,
}

#[derive(Debug, Clone, Default)]
struct BarrierState {
    arrived: Vec<NodeId>,
}

impl BarrierManager {
    /// Fresh manager.
    pub fn new() -> Self {
        BarrierManager::default()
    }

    /// A node arrives at `bar`, which completes when `expected` nodes have
    /// arrived. Returns the full arrival list (to broadcast the release to)
    /// when this arrival is the last one.
    pub fn arrive(&mut self, bar: BarrierId, node: NodeId, expected: usize) -> Option<Vec<NodeId>> {
        let st = self.barriers.entry(bar).or_default();
        debug_assert!(!st.arrived.contains(&node), "double arrival at barrier");
        st.arrived.push(node);
        if st.arrived.len() == expected {
            // Reset for reuse: workloads re-enter the same barrier id each
            // phase.
            Some(std::mem::take(&mut st.arrived))
        } else {
            None
        }
    }

    /// How many nodes are currently waiting at `bar`.
    pub fn waiting(&self, bar: BarrierId) -> usize {
        self.barriers.get(&bar).map_or(0, |s| s.arrived.len())
    }

    /// Deterministic snapshot of every barrier's arrival set, sorted by
    /// barrier id, empty sets omitted — for state fingerprinting.
    pub fn snapshot(&self) -> Vec<(BarrierId, Vec<NodeId>)> {
        let mut out: Vec<_> = self
            .barriers
            .iter()
            .filter(|(_, s)| !s.arrived.is_empty())
            .map(|(&b, s)| {
                let mut arrived = s.arrived.clone();
                arrived.sort_unstable();
                (b, arrived)
            })
            .collect();
        out.sort_unstable_by_key(|&(b, _)| b);
        out
    }

    /// Exact checkpoint: sorted by barrier id, empty episodes omitted, but
    /// each arrival list in **arrival order** (which fixes the release
    /// broadcast order), unlike the fingerprint-oriented
    /// [`BarrierManager::snapshot`]. Restorable via
    /// [`BarrierManager::restore`].
    pub fn save_exact(&self) -> Vec<(BarrierId, Vec<NodeId>)> {
        let mut out: Vec<_> = self
            .barriers
            .iter()
            .filter(|(_, s)| !s.arrived.is_empty())
            .map(|(&b, s)| (b, s.arrived.clone()))
            .collect();
        out.sort_unstable_by_key(|&(b, _)| b);
        out
    }

    /// Replace all barrier state with a checkpoint from
    /// [`BarrierManager::save_exact`].
    pub fn restore(&mut self, barriers: &[(BarrierId, Vec<NodeId>)]) {
        self.barriers.clear();
        for (b, arrived) in barriers {
            self.barriers.insert(*b, BarrierState { arrived: arrived.clone() });
        }
    }

    /// Crash-stop reclamation: remove `dead` from every in-progress
    /// episode, then re-check completion against the post-crash
    /// `expected` count — with one fewer participant, an episode the dead
    /// node never reached may now be full. Returns the completed barriers
    /// with their (live) arrival lists to release, sorted by barrier id,
    /// plus the number of dead arrival slots dropped.
    pub fn purge(
        &mut self,
        dead: NodeId,
        expected: usize,
    ) -> (Vec<(BarrierId, Vec<NodeId>)>, u64) {
        let mut released = Vec::new();
        let mut slots = 0u64;
        for (&bar, st) in self.barriers.iter_mut() {
            let before = st.arrived.len();
            st.arrived.retain(|&n| n != dead);
            slots += (before - st.arrived.len()) as u64;
            if !st.arrived.is_empty() && st.arrived.len() >= expected {
                released.push((bar, std::mem::take(&mut st.arrived)));
            }
        }
        released.sort_unstable_by_key(|&(b, _)| b);
        (released, slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_lock_grants_immediately() {
        let mut m = LockManager::new();
        assert_eq!(m.acquire(0, 3), LockAction::Grant(3));
        assert_eq!(m.holder(0), Some(3));
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut m = LockManager::new();
        m.acquire(0, 1);
        assert_eq!(m.acquire(0, 2), LockAction::None);
        assert_eq!(m.acquire(0, 3), LockAction::None);
        assert_eq!(m.queue_len(0), 2);
        assert_eq!(m.release(0, 1), LockAction::Grant(2));
        assert_eq!(m.release(0, 2), LockAction::Grant(3));
        assert_eq!(m.release(0, 3), LockAction::None);
        assert_eq!(m.holder(0), None);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut m = LockManager::new();
        assert_eq!(m.acquire(0, 1), LockAction::Grant(1));
        assert_eq!(m.acquire(1, 2), LockAction::Grant(2));
        assert_eq!(m.holder(0), Some(1));
        assert_eq!(m.holder(1), Some(2));
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = BarrierManager::new();
        assert_eq!(b.arrive(0, 0, 3), None);
        assert_eq!(b.arrive(0, 1, 3), None);
        assert_eq!(b.waiting(0), 2);
        let released = b.arrive(0, 2, 3).unwrap();
        assert_eq!(released.len(), 3);
        assert!(released.contains(&0) && released.contains(&1) && released.contains(&2));
    }

    #[test]
    fn barrier_is_reusable() {
        let mut b = BarrierManager::new();
        for round in 0..5 {
            assert_eq!(b.arrive(7, 0, 2), None, "round {round}");
            assert!(b.arrive(7, 1, 2).is_some(), "round {round}");
            assert_eq!(b.waiting(7), 0);
        }
    }

    #[test]
    fn single_proc_barrier_releases_instantly() {
        let mut b = BarrierManager::new();
        assert_eq!(b.arrive(0, 0, 1), Some(vec![0]));
    }

    #[test]
    fn lock_purge_passes_grant_over_dead_holder_and_waiters() {
        let mut m = LockManager::new();
        m.acquire(0, 1); // 1 holds lock 0
        m.acquire(0, 2); // 2 queued
        m.acquire(0, 3); // 3 queued
        m.acquire(1, 2); // 2 holds lock 1, nobody queued
        m.acquire(2, 4); // 4 holds lock 2
        m.acquire(2, 1); // dead node also waits on a live lock

        // Node 1 dies: lock 0 passes to 2; its slot in lock 2's queue goes.
        let (grants, reclaimed) = m.purge(1);
        assert_eq!(grants, vec![(0, 2)]);
        assert_eq!(reclaimed, 1);
        assert_eq!(m.holder(0), Some(2));
        assert_eq!(m.queue_len(2), 0);

        // Node 2 dies holding both: lock 0 passes to 3, lock 1 frees.
        let (grants, reclaimed) = m.purge(2);
        assert_eq!(grants, vec![(0, 3)]);
        assert_eq!(reclaimed, 2);
        assert_eq!(m.holder(1), None);
    }

    #[test]
    fn barrier_purge_completes_short_handed_episodes() {
        let mut b = BarrierManager::new();
        // 3 of 4 arrived; the missing node dies, expected drops to 3.
        assert_eq!(b.arrive(0, 0, 4), None);
        assert_eq!(b.arrive(0, 1, 4), None);
        assert_eq!(b.arrive(0, 2, 4), None);
        let (released, slots) = b.purge(3, 3);
        assert_eq!(slots, 0, "the dead node had not arrived");
        assert_eq!(released, vec![(0, vec![0, 1, 2])]);
        assert_eq!(b.waiting(0), 0);

        // The dead node *had* arrived: its slot is dropped, the episode
        // waits for the remaining live arrivals.
        assert_eq!(b.arrive(1, 3, 4), None);
        assert_eq!(b.arrive(1, 0, 4), None);
        let (released, slots) = b.purge(3, 3);
        assert_eq!(slots, 1);
        assert!(released.is_empty());
        assert_eq!(b.waiting(1), 1);
    }
}

//! Protocol message catalogue.
//!
//! Every coherence and synchronization interaction travels as a [`Msg`]
//! through the mesh model. Sizes follow the paper's cost model: control
//! messages are a bare header, data messages add a full cache line, and
//! write-through / write-back messages add only the dirty words.

use lrc_sim::{BarrierId, LineAddr, LockId, NodeId, TrafficClass};

/// Grant mode returned by the home on a write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteGrant {
    /// No other copies needed notification/invalidation: the write has
    /// globally performed as far as the directory is concerned.
    Immediate,
    /// A weak transition (lazy) or invalidation round (eager) is in flight;
    /// a separate [`MsgKind::WriteAck`] arrives when all acks are collected.
    Pending,
}

/// Payload of a protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum MsgKind {
    // ---- requester → home -------------------------------------------------
    /// Read miss: fetch the line.
    ReadReq { line: LineAddr },
    /// Write announcement / ownership request.
    ///
    /// * Eager protocols: request exclusive ownership (`had_copy` = upgrade).
    /// * Lazy: announce this node is writing the line. `words` carries the
    ///   accumulated dirty words for the lazy-ext protocol's deferred
    ///   notices (zero for plain LRC, whose data flows via write-throughs).
    WriteReq { line: LineAddr, had_copy: bool, words: u64 },
    /// Flush of one coalescing-buffer entry to home memory (lazy).
    WriteThrough { line: LineAddr, words: u64 },
    /// Write-back of a dirty evicted line (eager protocols).
    WriteBack { line: LineAddr, words: u64 },
    /// The sender no longer caches the line (clean eviction, or an
    /// acquire-time invalidation under the lazy protocols).
    EvictNotify { line: LineAddr, was_writer: bool },

    // ---- home → requester -------------------------------------------------
    /// Line data (or permission) reply to a read miss. `weak` tells a lazy
    /// requester to self-invalidate at its next acquire.
    ReadReply { line: LineAddr, weak: bool },
    /// Reply to a write request. `with_data` when the home had to supply the
    /// line (requester had no copy); `weak` as for reads.
    WriteReply { line: LineAddr, grant: WriteGrant, with_data: bool, weak: bool },
    /// Final acknowledgement once a pending collection completes.
    WriteAck { line: LineAddr },
    /// Acknowledgement of a write-through flush.
    WriteThroughAck { line: LineAddr },
    /// Acknowledgement of a write-back.
    WriteBackAck { line: LineAddr },

    // ---- home → third parties ---------------------------------------------
    /// Eager invalidation of a cached copy.
    Invalidate { line: LineAddr },
    /// Lazy write notice: invalidate at your next acquire.
    WriteNotice { line: LineAddr },
    /// 3-hop forward of a request to the dirty owner (eager protocols).
    /// `ep` identifies the forward episode so late replies can be told
    /// apart from the current one.
    Forward { line: LineAddr, requester: NodeId, for_write: bool, ep: u64 },

    // ---- third parties → home / requester ----------------------------------
    /// Invalidation acknowledgement.
    InvAck { line: LineAddr },
    /// Write-notice acknowledgement.
    NoticeAck { line: LineAddr },
    /// Owner's data reply to a forwarded request (3-hop second leg).
    OwnerData { line: LineAddr, for_write: bool },
    /// Owner's concurrent copy-back to the home (3-hop third leg).
    CopyBack { line: LineAddr, demoted_to_shared: bool, ep: u64 },
    /// Owner no longer holds the line (raced with an eviction): the home
    /// must serve the forwarded request from memory.
    ForwardNack { line: LineAddr, requester: NodeId, for_write: bool, ep: u64 },

    // ---- synchronization ---------------------------------------------------
    /// Request lock ownership.
    LockAcq { lock: LockId },
    /// Lock granted.
    LockGrant { lock: LockId },
    /// Release lock ownership.
    LockRel { lock: LockId },
    /// Arrival at a barrier.
    BarrierArrive { bar: BarrierId },
    /// All processors arrived: proceed.
    BarrierRelease { bar: BarrierId },

    // ---- finite resources ---------------------------------------------------
    // (Appended last: the derived `Hash` folds the variant index, and the
    // golden fingerprints depend on the indices above staying put.)
    /// Home → requester: the directory entry is busy with an in-flight
    /// transaction and no request slot is free — retry after backoff. The
    /// remaining fields echo the rejected request so the requester can
    /// reconstruct it verbatim (`for_write` picks `WriteReq` vs `ReadReq`;
    /// `attempt` scales the retry backoff).
    BusyNack { line: LineAddr, for_write: bool, had_copy: bool, words: u64, attempt: u32 },

    /// Home → owner: the forward episode `ep` was cancelled (the home
    /// resolved it from memory because the owner's own request for the same
    /// line arrived first). The owner drops the matching parked forward.
    /// Ordering makes this race-free: on a given home→owner channel the
    /// `Forward` always arrives before its `ForwardCancel`.
    ForwardCancel { line: LineAddr, ep: u64 },

    // ---- failure detection ---------------------------------------------------
    /// "I am alive": periodic lease renewal sent to every peer while a
    /// crash plan is armed. Carries no line and needs no reply — silence
    /// past the lease bound is itself the signal.
    Heartbeat,
}

/// A routed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Msg {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload.
    pub kind: MsgKind,
}

impl MsgKind {
    /// Wire size in bytes, given the machine's header/line/word sizes.
    pub fn bytes(&self, header: u64, line_size: u64, word_size: u64) -> u64 {
        match *self {
            MsgKind::ReadReply { .. } | MsgKind::OwnerData { .. } => header + line_size,
            MsgKind::WriteReply { with_data, .. } => {
                header + if with_data { line_size } else { 0 }
            }
            MsgKind::CopyBack { .. } => header + line_size,
            MsgKind::WriteThrough { words, .. }
            | MsgKind::WriteBack { words, .. }
            | MsgKind::WriteReq { words, .. } => header + u64::from(words.count_ones()) * word_size,
            _ => header,
        }
    }

    /// Traffic class for accounting.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            MsgKind::ReadReply { .. } | MsgKind::OwnerData { .. } | MsgKind::CopyBack { .. } => {
                TrafficClass::Data
            }
            MsgKind::WriteReply { with_data: true, .. } => TrafficClass::Data,
            MsgKind::WriteThrough { .. } | MsgKind::WriteBack { .. } => TrafficClass::WriteData,
            MsgKind::WriteReq { words, .. } if *words != 0 => TrafficClass::WriteData,
            _ => TrafficClass::Control,
        }
    }

    /// The line this message concerns, if any (sync messages have none).
    pub fn line(&self) -> Option<LineAddr> {
        match *self {
            MsgKind::ReadReq { line }
            | MsgKind::WriteReq { line, .. }
            | MsgKind::WriteThrough { line, .. }
            | MsgKind::WriteBack { line, .. }
            | MsgKind::EvictNotify { line, .. }
            | MsgKind::ReadReply { line, .. }
            | MsgKind::WriteReply { line, .. }
            | MsgKind::WriteAck { line }
            | MsgKind::WriteThroughAck { line }
            | MsgKind::WriteBackAck { line }
            | MsgKind::Invalidate { line }
            | MsgKind::WriteNotice { line }
            | MsgKind::Forward { line, .. }
            | MsgKind::InvAck { line }
            | MsgKind::NoticeAck { line }
            | MsgKind::OwnerData { line, .. }
            | MsgKind::CopyBack { line, .. }
            | MsgKind::ForwardNack { line, .. }
            | MsgKind::BusyNack { line, .. }
            | MsgKind::ForwardCancel { line, .. } => Some(line),
            _ => None,
        }
    }

    /// Stable variant name for trace records and exports.
    pub fn name(&self) -> &'static str {
        match self {
            MsgKind::ReadReq { .. } => "ReadReq",
            MsgKind::WriteReq { .. } => "WriteReq",
            MsgKind::WriteThrough { .. } => "WriteThrough",
            MsgKind::WriteBack { .. } => "WriteBack",
            MsgKind::EvictNotify { .. } => "EvictNotify",
            MsgKind::ReadReply { .. } => "ReadReply",
            MsgKind::WriteReply { .. } => "WriteReply",
            MsgKind::WriteAck { .. } => "WriteAck",
            MsgKind::WriteThroughAck { .. } => "WriteThroughAck",
            MsgKind::WriteBackAck { .. } => "WriteBackAck",
            MsgKind::Invalidate { .. } => "Invalidate",
            MsgKind::WriteNotice { .. } => "WriteNotice",
            MsgKind::Forward { .. } => "Forward",
            MsgKind::InvAck { .. } => "InvAck",
            MsgKind::NoticeAck { .. } => "NoticeAck",
            MsgKind::OwnerData { .. } => "OwnerData",
            MsgKind::CopyBack { .. } => "CopyBack",
            MsgKind::ForwardNack { .. } => "ForwardNack",
            MsgKind::LockAcq { .. } => "LockAcq",
            MsgKind::LockGrant { .. } => "LockGrant",
            MsgKind::LockRel { .. } => "LockRel",
            MsgKind::BarrierArrive { .. } => "BarrierArrive",
            MsgKind::BarrierRelease { .. } => "BarrierRelease",
            MsgKind::BusyNack { .. } => "BusyNack",
            MsgKind::ForwardCancel { .. } => "ForwardCancel",
            MsgKind::Heartbeat => "Heartbeat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u64 = 8;
    const L: u64 = 128;
    const W: u64 = 4;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn control_messages_are_header_only() {
        assert_eq!(MsgKind::ReadReq { line: l(1) }.bytes(H, L, W), 8);
        assert_eq!(MsgKind::WriteAck { line: l(1) }.bytes(H, L, W), 8);
        assert_eq!(MsgKind::LockAcq { lock: 0 }.bytes(H, L, W), 8);
        assert_eq!(
            MsgKind::EvictNotify { line: l(1), was_writer: true }.bytes(H, L, W),
            8
        );
    }

    #[test]
    fn data_messages_carry_a_line() {
        assert_eq!(MsgKind::ReadReply { line: l(1), weak: false }.bytes(H, L, W), 136);
        assert_eq!(
            MsgKind::OwnerData { line: l(1), for_write: false }.bytes(H, L, W),
            136
        );
        let wr = MsgKind::WriteReply {
            line: l(1),
            grant: WriteGrant::Immediate,
            with_data: true,
            weak: false,
        };
        assert_eq!(wr.bytes(H, L, W), 136);
        let wr_nodata = MsgKind::WriteReply {
            line: l(1),
            grant: WriteGrant::Pending,
            with_data: false,
            weak: true,
        };
        assert_eq!(wr_nodata.bytes(H, L, W), 8);
    }

    #[test]
    fn write_payloads_scale_with_dirty_words() {
        let wt = MsgKind::WriteThrough { line: l(1), words: 0b1011 };
        assert_eq!(wt.bytes(H, L, W), 8 + 3 * 4);
        let wb = MsgKind::WriteBack { line: l(1), words: u64::MAX >> 32 };
        assert_eq!(wb.bytes(H, L, W), 8 + 32 * 4);
        // Lazy-ext write request carrying deferred words.
        let wreq = MsgKind::WriteReq { line: l(1), had_copy: true, words: 0b11 };
        assert_eq!(wreq.bytes(H, L, W), 16);
    }

    #[test]
    fn traffic_classes() {
        assert_eq!(
            MsgKind::ReadReq { line: l(1) }.traffic_class(),
            TrafficClass::Control
        );
        assert_eq!(
            MsgKind::ReadReply { line: l(1), weak: false }.traffic_class(),
            TrafficClass::Data
        );
        assert_eq!(
            MsgKind::WriteThrough { line: l(1), words: 1 }.traffic_class(),
            TrafficClass::WriteData
        );
        assert_eq!(
            MsgKind::WriteReq { line: l(1), had_copy: true, words: 0 }.traffic_class(),
            TrafficClass::Control
        );
    }

    #[test]
    fn line_extraction() {
        assert_eq!(MsgKind::ReadReq { line: l(9) }.line(), Some(l(9)));
        assert_eq!(MsgKind::LockAcq { lock: 3 }.line(), None);
        assert_eq!(MsgKind::BarrierArrive { bar: 0 }.line(), None);
        let nack =
            MsgKind::BusyNack { line: l(9), for_write: true, had_copy: false, words: 0, attempt: 1 };
        assert_eq!(nack.line(), Some(l(9)));
        assert_eq!(nack.bytes(H, L, W), 8, "a NACK is a bare header");
        assert_eq!(nack.traffic_class(), TrafficClass::Control);
        assert_eq!(MsgKind::Heartbeat.line(), None);
        assert_eq!(MsgKind::Heartbeat.bytes(H, L, W), 8, "a heartbeat is a bare header");
        assert_eq!(MsgKind::Heartbeat.traffic_class(), TrafficClass::Control);
    }
}

//! Machine-side wiring for the online happens-before race detector.
//!
//! Mirrors `values.rs`: the machine owns an `Option<Box<RaceDetector>>`
//! and every hook below is `#[inline]` with one `is_some` branch, so a
//! detection-off run (the default) is bit-identical to a build without
//! the detector — the same zero-cost-when-off contract the tracing layer
//! (`obs.rs`) and value tracking already honor.
//!
//! Hook placement maps the detector's happens-before model onto the
//! machine's own event order:
//!
//! * **reads/writes** — at op issue in `step.rs`, exactly once per
//!   program-order reference (the write-buffer-full retry path defers the
//!   op *before* the hook).
//! * **release** — at the `LockRel` send (both the immediate path in
//!   `begin_release` and the fence-delayed path in
//!   `try_complete_release`). The event kernel processes that send before
//!   the grant it causes, so the lock clock is always published before
//!   any acquirer joins it.
//! * **acquire join** — at `LockGrant` receipt, before the processor
//!   resumes: everything past releasers did is ordered before every op
//!   the acquirer issues next.
//! * **barrier arrive/depart** — at the `BarrierArrive` send and the
//!   `BarrierRelease` receipt. The machine blocks arrivals until the
//!   episode completes, so at most one episode per barrier gathers at a
//!   time and the completed clock is fixed before any departure joins it.
//! * **fence** — no hook: `Op::Fence` forces local invalidations but
//!   synchronizes with nobody, so it contributes no happens-before edge
//!   (it is the paper's escape hatch *for* racy programs, and must not
//!   silence the detector).

use super::Machine;
use lrc_sim::{BarrierId, LockId, ProcId};

impl Machine {
    /// Processor `p` issues a read of address `a`.
    #[inline]
    pub(crate) fn note_race_read(&mut self, p: ProcId, a: u64) {
        if let Some(r) = self.race.as_mut() {
            r.on_read(p, a);
        }
    }

    /// Processor `p` issues a write to address `a`.
    #[inline]
    pub(crate) fn note_race_write(&mut self, p: ProcId, a: u64) {
        if let Some(r) = self.race.as_mut() {
            r.on_write(p, a);
        }
    }

    /// Processor `p` releases `lock` (the `LockRel` send).
    #[inline]
    pub(crate) fn note_race_release(&mut self, p: ProcId, lock: LockId) {
        if let Some(r) = self.race.as_mut() {
            r.on_release(p, lock);
        }
    }

    /// Processor `p`'s acquire of `lock` was granted.
    #[inline]
    pub(crate) fn note_race_acquire(&mut self, p: ProcId, lock: LockId) {
        if let Some(r) = self.race.as_mut() {
            r.on_acquire(p, lock);
        }
    }

    /// Processor `p` arrives at `bar` (the `BarrierArrive` send).
    #[inline]
    pub(crate) fn note_race_barrier_arrive(&mut self, p: ProcId, bar: BarrierId) {
        if self.race.is_some() {
            let expected = self.cfg.num_procs;
            if let Some(r) = self.race.as_mut() {
                r.on_barrier_arrive(p, bar, expected);
            }
        }
    }

    /// Processor `p` departs `bar` (the `BarrierRelease` receipt).
    #[inline]
    pub(crate) fn note_race_barrier_depart(&mut self, p: ProcId, bar: BarrierId) {
        if let Some(r) = self.race.as_mut() {
            r.on_barrier_depart(p, bar);
        }
    }
}

//! Directory-side message handling: what the home node's protocol processor
//! does with requests, flushes, and acknowledgements.
//!
//! Costs follow Table 1: a directory access costs `dir_cost(protocol)`
//! cycles; dispatching each notice/invalidation costs `write_notice_cost`;
//! acknowledgements are cheap counter updates. Where the paper allows it,
//! directory processing overlaps the memory access for the same request.

use super::{ForwardEp, Machine};
use crate::directory::{nodes_in, AckCollection, DirState, NodeSet};
use crate::msg::{Msg, MsgKind, WriteGrant};
use lrc_sim::{Cycle, LineAddr, NodeId};

impl Machine {
    /// Dispatch a message addressed to the directory at `m.dst`.
    pub(crate) fn handle_at_home(&mut self, t: Cycle, m: Msg) {
        match m.kind {
            MsgKind::ReadReq { line } => self.home_read_req(t, m, line),
            MsgKind::WriteReq { line, had_copy, words } => {
                self.home_write_req(t, m, line, had_copy, words)
            }
            MsgKind::WriteThrough { line, words } => self.home_write_through(t, m, line, words),
            MsgKind::WriteBack { line, words } => self.home_write_back(t, m, line, words),
            MsgKind::EvictNotify { line, .. } => self.home_evict_notify(t, m, line),
            MsgKind::InvAck { line } | MsgKind::NoticeAck { line } => self.home_ack(t, m, line),
            MsgKind::CopyBack { line, ep, .. } => self.home_copy_back(t, m, line, ep),
            MsgKind::ForwardNack { line, requester, for_write, ep } => {
                self.home_forward_nack(t, m, line, requester, for_write, ep)
            }
            _ => unreachable!("not a home-side message: {:?}", m.kind),
        }
    }

    fn home_read_req(&mut self, t: Cycle, m: Msg, line: LineAddr) {
        let (h, r) = (m.dst, m.src);
        let lazy = self.protocol.is_lazy();

        if !lazy && self.dir.get(line.0).is_some_and(|e| e.pending.is_some() || e.busy) {
            // An invalidation round or 3-hop forward is in flight: queue
            // the request (it pays a NAK round trip when released) — unless
            // the forward targets this very requester and can never be
            // served, in which case resolve it and fall through.
            if !self.resolve_dead_forward_if_cyclic(t, m.src, line) {
                match self.busy_action(line) {
                    Some(attempt) => self.send_busy_nack(t, m, line, attempt),
                    None => self.park(m, t),
                }
                return;
            }
        }

        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.dir_cost(self.protocol));

        if lazy {
            // Lazy reads are never forwarded: memory is fresh enough under
            // write-through, and an unsynchronized read of a dirty block is
            // by definition not true sharing (paper Section 2).
            let all = self.all_nodes_mask();
            let (weak, notice_targets) = {
                let e = self.dir.entry_or_default(line.0);
                e.add_sharer(r);
                if e.state() == DirState::Weak {
                    let targets = if e.overflow {
                        // Limited pointers overflowed: broadcast to every
                        // node we have not (knowingly) notified.
                        all & !NodeSet::one(r) & !e.notified()
                    } else {
                        e.unnotified_others(r)
                    };
                    for n in nodes_in(targets & e.sharers()) {
                        e.mark_notified(n);
                    }
                    e.mark_notified(r);
                    (true, targets)
                } else {
                    (false, NodeSet::EMPTY)
                }
            };
            self.apply_pointer_limit(line);
            let n_notices = notice_targets.count_ones();
            if n_notices > 0 {
                // Read of a dirty block: the current writer(s) must be told
                // the block is now weak.
                let mut send_t = pp_done;
                for n in nodes_in(notice_targets) {
                    send_t = self.nodes[h].pp.occupy(send_t, self.cfg.write_notice_cost);
                    self.send(send_t, h, n, MsgKind::WriteNotice { line });
                }
                let e = self.dir.get_mut(line.0).expect("entry exists");
                match e.pending.as_mut() {
                    Some(pc) => {
                        pc.awaiting += n_notices;
                        pc.from.extend(nodes_in(notice_targets));
                    }
                    None => {
                        e.pending = Some(AckCollection {
                            awaiting: n_notices,
                            waiters: Vec::new(),
                            from: nodes_in(notice_targets).collect(),
                        })
                    }
                }
            }
            let mem_done = self.nodes[h].mem.access(t, self.cfg.line_size as u64);
            self.send(pp_done.max(mem_done), h, r, MsgKind::ReadReply { line, weak });
            return;
        }

        // Eager protocols (SC / ERC).
        enum Plan {
            FromMemory,
            Forward(NodeId),
        }
        let plan = {
            let e = self.dir.entry_or_default(line.0);
            match e.state() {
                DirState::Uncached | DirState::Shared => {
                    e.add_sharer(r);
                    Plan::FromMemory
                }
                DirState::Dirty => {
                    let o = e.dirty_owner().expect("dirty has owner");
                    if o == r {
                        // Stale-dirty race: r's write-back is in flight.
                        e.demote_writer(r);
                        Plan::FromMemory
                    } else if owner_parked(&self.parked, line, o) {
                        // The "owner" is itself re-requesting this line (its
                        // request is queued right here): the entry is stale
                        // and a forward could never be served. Serve from
                        // memory; the owner's queued request re-registers it.
                        e.remove(o);
                        e.add_sharer(r);
                        Plan::FromMemory
                    } else {
                        e.demote_writer(o);
                        e.add_sharer(r);
                        e.busy = true;
                        Plan::Forward(o)
                    }
                }
                DirState::Weak => unreachable!("eager directory cannot be weak"),
            }
        };
        self.apply_pointer_limit(line);
        match plan {
            Plan::FromMemory => {
                let mem_done = self.nodes[h].mem.access(t, self.cfg.line_size as u64);
                self.send(pp_done.max(mem_done), h, r, MsgKind::ReadReply { line, weak: false });
                self.maybe_release_parked(pp_done, line);
            }
            Plan::Forward(o) => {
                self.stats.procs[r].three_hop += 1;
                self.forward_seq += 1;
                let ep = self.forward_seq;
                self.busy_info.insert(
                    line.0,
                    ForwardEp { id: ep, owner: o, requester: r, for_write: false, served: false },
                );
                self.send(pp_done, h, o, MsgKind::Forward { line, requester: r, for_write: false, ep });
            }
        }
    }

    fn home_write_req(&mut self, t: Cycle, m: Msg, line: LineAddr, had_copy: bool, words: u64) {
        let (h, r) = (m.dst, m.src);

        if self.protocol.is_lazy() {
            self.lazy_write_req(t, h, r, line, had_copy, words);
            return;
        }

        if self.dir.get(line.0).is_some_and(|e| e.pending.is_some() || e.busy)
            && !self.resolve_dead_forward_if_cyclic(t, m.src, line)
        {
            match self.busy_action(line) {
                Some(attempt) => self.send_busy_nack(t, m, line, attempt),
                None => self.park(m, t),
            }
            return;
        }
        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.dir_cost(self.protocol));

        enum Plan {
            Grant { with_data: bool, invalidate: NodeSet },
            Forward(NodeId),
        }
        let plan = {
            let e = self.dir.entry_or_default(line.0);
            let r_has_copy = had_copy && e.is_sharer(r);
            match e.state() {
                DirState::Uncached => {
                    e.add_writer(r);
                    Plan::Grant { with_data: !r_has_copy, invalidate: NodeSet::EMPTY }
                }
                DirState::Shared => {
                    let overflow = e.overflow;
                    let others = e.remove_all_except(r);
                    e.add_writer(r);
                    Plan::Grant {
                        with_data: !r_has_copy,
                        // Overflowed limited pointers: membership is
                        // imprecise, so invalidate everyone else.
                        invalidate: if overflow { !NodeSet::one(r) } else { others },
                    }
                }
                DirState::Dirty => {
                    let o = e.dirty_owner().expect("dirty has owner");
                    if o == r {
                        Plan::Grant { with_data: !r_has_copy, invalidate: NodeSet::EMPTY }
                    } else if owner_parked(&self.parked, line, o) {
                        // Stale owner (see the read path): serve from memory.
                        e.remove(o);
                        e.add_writer(r);
                        Plan::Grant { with_data: true, invalidate: NodeSet::EMPTY }
                    } else {
                        e.remove(o);
                        e.add_writer(r);
                        e.busy = true;
                        Plan::Forward(o)
                    }
                }
                DirState::Weak => unreachable!("eager directory cannot be weak"),
            }
        };
        match plan {
            Plan::Grant { with_data, invalidate } => {
                let mut invalidate = invalidate & self.all_nodes_mask();
                if self.fault == super::Fault::SkipInvalidate {
                    // Injected bug: pretend nobody else caches the line.
                    invalidate = NodeSet::EMPTY;
                }
                let n = invalidate.count_ones();
                let grant = if n > 0 {
                    let mut waiters = self.take_waiters();
                    waiters.push(r);
                    let e = self.dir.get_mut(line.0).expect("entry exists");
                    e.pending = Some(AckCollection {
                        awaiting: n,
                        waiters,
                        from: nodes_in(invalidate).collect(),
                    });
                    let mut send_t = pp_done;
                    for o in nodes_in(invalidate) {
                        send_t = self.nodes[h].pp.occupy(send_t, self.cfg.write_notice_cost);
                        self.send(send_t, h, o, MsgKind::Invalidate { line });
                    }
                    WriteGrant::Pending
                } else {
                    WriteGrant::Immediate
                };
                let reply_t = if with_data {
                    let mem_done = self.nodes[h].mem.access(t, self.cfg.line_size as u64);
                    pp_done.max(mem_done)
                } else {
                    pp_done
                };
                self.send(
                    reply_t,
                    h,
                    r,
                    MsgKind::WriteReply { line, grant, with_data, weak: false },
                );
                if grant == WriteGrant::Immediate {
                    self.maybe_release_parked(reply_t, line);
                }
            }
            Plan::Forward(o) => {
                self.stats.procs[r].three_hop += 1;
                self.forward_seq += 1;
                let ep = self.forward_seq;
                self.busy_info.insert(
                    line.0,
                    ForwardEp { id: ep, owner: o, requester: r, for_write: true, served: false },
                );
                self.send(pp_done, h, o, MsgKind::Forward { line, requester: r, for_write: true, ep });
            }
        }
    }

    /// Lazy (LRC / LRC-EXT) write request: record the writer, fan out write
    /// notices for a weak transition, and join or start an ack collection.
    fn lazy_write_req(&mut self, t: Cycle, h: NodeId, r: NodeId, line: LineAddr, had_copy: bool, words: u64) {
        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.dir_cost(self.protocol));

        // Deferred-notice payload (lazy-ext): commit the words to memory.
        let mut mem_done = t;
        if words != 0 {
            let bytes = u64::from(words.count_ones()) * self.cfg.word_size as u64;
            mem_done = self.nodes[h].mem.access(t, bytes);
        }

        let all = self.all_nodes_mask();
        let (weak, with_data, notice_targets, join_pending) = {
            let e = self.dir.entry_or_default(line.0);
            let r_has_copy = had_copy && e.is_sharer(r);
            e.add_writer(r);
            if e.state() == DirState::Weak {
                let targets = if e.overflow {
                    all & !NodeSet::one(r) & !e.notified()
                } else {
                    e.unnotified_others(r)
                };
                for n in nodes_in(targets & e.sharers()) {
                    e.mark_notified(n);
                }
                e.mark_notified(r);
                (true, !r_has_copy, targets, e.pending.is_some())
            } else {
                (false, !r_has_copy, NodeSet::EMPTY, false)
            }
        };
        self.apply_pointer_limit(line);

        let n_notices = notice_targets.count_ones();
        let mut send_t = pp_done;
        if self.fault != super::Fault::SkipWriteNotice {
            for n in nodes_in(notice_targets) {
                send_t = self.nodes[h].pp.occupy(send_t, self.cfg.write_notice_cost);
                self.send(send_t, h, n, MsgKind::WriteNotice { line });
            }
        }

        let grant = if n_notices > 0 {
            if join_pending {
                let e = self.dir.get_mut(line.0).expect("entry exists");
                let pc = e.pending.as_mut().expect("pending collection");
                pc.awaiting += n_notices;
                pc.from.extend(nodes_in(notice_targets));
                pc.waiters.push(r);
            } else {
                let mut waiters = self.take_waiters();
                waiters.push(r);
                let e = self.dir.get_mut(line.0).expect("entry exists");
                e.pending = Some(AckCollection {
                    awaiting: n_notices,
                    waiters,
                    from: nodes_in(notice_targets).collect(),
                });
            }
            WriteGrant::Pending
        } else if join_pending {
            // A collection for this block is already in flight (another
            // writer's round): the paper's home collects acks only once and
            // acknowledges all pending writers together.
            let e = self.dir.get_mut(line.0).expect("entry exists");
            e.pending.as_mut().expect("pending collection").waiters.push(r);
            WriteGrant::Pending
        } else {
            WriteGrant::Immediate
        };

        if with_data {
            mem_done = mem_done.max(self.nodes[h].mem.access(t, self.cfg.line_size as u64));
        }
        self.send(
            pp_done.max(mem_done),
            h,
            r,
            MsgKind::WriteReply { line, grant, with_data, weak },
        );
    }

    fn home_write_through(&mut self, t: Cycle, m: Msg, line: LineAddr, words: u64) {
        let (h, r) = (m.dst, m.src);
        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.write_notice_cost);
        let bytes = u64::from(words.count_ones()) * self.cfg.word_size as u64;
        let mem_done = self.nodes[h].mem.access(t, bytes);
        self.send(pp_done.max(mem_done), h, r, MsgKind::WriteThroughAck { line });
    }

    fn home_write_back(&mut self, t: Cycle, m: Msg, line: LineAddr, words: u64) {
        let (h, r) = (m.dst, m.src);
        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.dir_cost(self.protocol));
        let bytes = u64::from(words.count_ones()) * self.cfg.word_size as u64;
        let mem_done = self.nodes[h].mem.access(t, bytes);
        // Same ordering guard as `home_evict_notify`: only a delivery-
        // reordering mode (fault plan, checker exploration — see there) can
        // move a refetch ahead of this write-back, so the cross-node peek is
        // gated to keep production shards independent.
        if !(self.delivery_reordering_possible()
            && (self.nodes[r].cache.contains(line)
                || self.nodes[r].outstanding.contains_key(&line.0)))
        {
            self.dir.entry_or_default(line.0).remove(r);
        }
        self.send(pp_done.max(mem_done), h, r, MsgKind::WriteBackAck { line });
    }

    fn home_evict_notify(&mut self, t: Cycle, m: Msg, line: LineAddr) {
        // A replacement hint is a cheap sharer-bit clear, not a full
        // directory transaction.
        let (h, r) = (m.dst, m.src);
        let _ = self.nodes[h].pp.occupy(t, self.cfg.write_notice_cost);
        // Ordering guard: if the sender has already re-fetched the line (its
        // refetch overtook this hint), the hint is stale and must not erase
        // the fresh copy's registration. In a production run this cannot
        // happen — deliveries on a given src→dst channel complete in send
        // order, and any refetch `ReadReq` departs after this hint, so its
        // install (which needs the home's reply, processed after the hint)
        // always postdates this point. Fault-plan retransmission or the
        // checker's interleaving exploration can reorder the two, so only
        // then do we consult the sender's authoritative cache state (a
        // cross-node peek the sharded engine must never make).
        if self.delivery_reordering_possible()
            && (self.nodes[r].cache.contains(line)
                || self.nodes[r].outstanding.contains_key(&line.0))
        {
            return;
        }
        // The block reverts Weak→Shared→Uncached automatically as sharers
        // and writers leave (derived state).
        self.dir.entry_or_default(line.0).remove(r);
    }

    /// An invalidation or write-notice acknowledgement: advance the
    /// collection; when it completes, release every waiting writer at once.
    fn home_ack(&mut self, t: Cycle, m: Msg, line: LineAddr) {
        let h = m.dst;
        let crash_armed = self.crash.is_some();
        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.write_notice_cost);
        let finished = {
            let e = self.dir.entry_or_default(line.0);
            if crash_armed {
                // Recovery may already have forged this node's acks (it was
                // suspected dead but a straggling real ack got through
                // first, or the suspicion was false): anything not owed is
                // dropped rather than double-counted.
                match e.pending.as_mut() {
                    Some(pc) => {
                        if !pc.take_owed(m.src) {
                            return;
                        }
                    }
                    None => return,
                }
            } else {
                let pc = e.pending.as_mut().expect("ack without pending collection");
                // A v1-restored snapshot carries an empty debtor multiset
                // (the field postdates the format); only a consistent
                // multiset can vouch that this ack was owed.
                let tracked = pc.from.len() == pc.awaiting as usize;
                let owed = pc.take_owed(m.src);
                debug_assert!(owed || !tracked, "ack from a node that owed none");
            }
            let pc = e.pending.as_mut().expect("pending collection");
            debug_assert!(pc.awaiting > 0);
            pc.awaiting -= 1;
            if pc.awaiting == 0 {
                let waiters = std::mem::take(&mut pc.waiters);
                e.pending = None;
                Some(waiters)
            } else {
                None
            }
        };
        if let Some(waiters) = finished {
            for &w in &waiters {
                self.send(pp_done, h, w, MsgKind::WriteAck { line });
            }
            self.recycle_waiters(waiters);
            self.maybe_release_parked(pp_done, line);
        }
    }

    /// If the in-flight forward for `line` targets `requester` itself and
    /// has not been served, it never will be (the owner is blocked waiting
    /// on this very entry): cancel it, serve its original requester from
    /// memory, and free the entry. Returns true when resolved.
    fn resolve_dead_forward_if_cyclic(&mut self, t: Cycle, requester: NodeId, line: LineAddr) -> bool {
        let Some(ep) = self.busy_info.get(line.0).copied() else {
            return false;
        };
        if ep.owner != requester || ep.served {
            return false;
        }
        // Cancel: tell the owner to drop the (parked or still in-flight)
        // Forward. Channel FIFO guarantees the Forward reaches the owner
        // before this cancel, and the cancel before the reply that unblocks
        // the owner — so the owner parks the stale Forward on arrival (its
        // own transaction is outstanding) and this message removes it before
        // anything could re-serve it.
        self.busy_info.remove(line.0);
        let h = self.home_of(line);
        self.send(t, h, ep.owner, MsgKind::ForwardCancel { line, ep: ep.id });
        self.dir.entry_or_default(line.0).busy = false;
        let mem_done = self.nodes[h].mem.access(t, self.cfg.line_size as u64);
        if ep.for_write {
            self.send(
                mem_done,
                h,
                ep.requester,
                MsgKind::WriteReply {
                    line,
                    grant: WriteGrant::Immediate,
                    with_data: true,
                    weak: false,
                },
            );
        } else {
            self.send(mem_done, h, ep.requester, MsgKind::ReadReply { line, weak: false });
        }
        true
    }

    fn home_copy_back(&mut self, t: Cycle, m: Msg, line: LineAddr, ep: u64) {
        // Third leg of an eager 3-hop transaction: the directory was already
        // updated when the request was forwarded; commit the data to memory
        // and reopen the entry for new requests. A copy-back from a
        // cancelled (stale) episode must not free a newer one's entry.
        let h = m.dst;
        let _ = self.nodes[h].mem.access(t, self.cfg.line_size as u64);
        if self.busy_info.get(line.0).is_some_and(|e| e.id == ep) {
            self.busy_info.remove(line.0);
            self.dir.entry_or_default(line.0).busy = false;
            self.maybe_release_parked(t, line);
        }
    }

    /// The forwarded-to owner no longer had the line — either it raced with
    /// its own write-back, or it was a "phantom" owner whose own data reply
    /// was still in flight. Serve the requester directly from memory:
    /// re-running the request through the state machine can livelock when
    /// two dataless requesters keep forwarding to each other.
    fn home_forward_nack(
        &mut self,
        t: Cycle,
        m: Msg,
        line: LineAddr,
        requester: NodeId,
        for_write: bool,
        ep: u64,
    ) {
        if self.busy_info.get(line.0).is_none_or(|e| e.id != ep) {
            return; // stale episode
        }
        let h = m.dst;
        let nacking_owner = m.src;
        self.busy_info.remove(line.0);
        {
            let e = self.dir.entry_or_default(line.0);
            e.busy = false;
            // The nacker does not hold the line, whatever the entry thought.
            e.remove(nacking_owner);
            // The requester was recorded (writer/sharer) at forward time;
            // re-assert in case the intervening traffic dropped it.
            if for_write {
                e.add_writer(requester);
            } else {
                e.add_sharer(requester);
            }
        }
        let pp_done = self.nodes[h].pp.occupy(t, self.cfg.dir_cost(self.protocol));
        let mem_done = self.nodes[h].mem.access(t, self.cfg.line_size as u64);
        let reply_t = pp_done.max(mem_done);
        if for_write {
            self.send(
                reply_t,
                h,
                requester,
                MsgKind::WriteReply {
                    line,
                    grant: WriteGrant::Immediate,
                    with_data: true,
                    weak: false,
                },
            );
        } else {
            self.send(reply_t, h, requester, MsgKind::ReadReply { line, weak: false });
        }
        self.maybe_release_parked(reply_t, line);
    }
}


/// Does the home's parked queue for `line` contain a request from `node`?
/// (If so, a forward to `node` could never be served: its own request is
/// waiting behind the very entry the forward would occupy.)
fn owner_parked(
    parked: &lrc_sim::LineMap<std::collections::VecDeque<(Msg, lrc_sim::Cycle)>>,
    line: LineAddr,
    node: NodeId,
) -> bool {
    parked
        .get(line.0)
        .is_some_and(|q| q.iter().any(|(m, _)| m.src == node))
}

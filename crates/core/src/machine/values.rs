//! Symbolic last-writer tracking for the model checker's DRF ⇒ SC check.
//!
//! The checker's central correctness question — "is this protocol execution
//! equivalent to some sequentially consistent execution?" — needs the final
//! memory contents, but the simulator models addresses and timing, not
//! data. So writes are tracked *symbolically*: the value stored by
//! processor `p`'s `k`-th write (1-based, program order) is the token
//! `WriteId { proc: p, seq: k }`, exactly the numbering the reference
//! interpreter in `lrc_sim::refint` uses. Two executions then have "the
//! same final memory" iff the `(line, word) → WriteId` maps agree.
//!
//! Tracking mirrors the hardware's two-stage write path:
//!
//! * [`ValueTracker::on_write`] fires when the processor *issues* a store —
//!   the word's latest id lands in the writer's per-line *unflushed* set
//!   (the union of its cache dirty bits, write/coalescing-buffer contents,
//!   and deferred-notice words).
//! * [`ValueTracker::on_flush`] fires when dirty words leave the node for
//!   home memory (write-through, write-back, 3-hop copy-back, or a
//!   lazy-ext deferred-notice `WriteReq`) — the flushed words move to the
//!   *home* image in flush order.
//!
//! For a data-race-free program flush order equals memory commit order
//! (conflicting flushes are separated by a release/acquire chain, and the
//! release fence waits for flush acks), so the home image is exact. The
//! final memory is the home image overlaid with each node's unflushed
//! words; DRF guarantees at most one node holds an unflushed id per word
//! at quiescence — two holders are reported as a conflict.

use lrc_sim::refint::WriteId;
use lrc_sim::ProcId;
use std::collections::BTreeMap;

/// Final symbolic memory image: `(line, word) → last writer`.
pub type SymbolicMemory = BTreeMap<(u64, usize), WriteId>;

/// Machine-side symbolic write tracking (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct ValueTracker {
    /// Per-processor count of writes issued so far (program order).
    seq: Vec<u64>,
    /// Last writer of each word, as committed at its home.
    home: BTreeMap<(u64, usize), WriteId>,
    /// Written-but-unflushed words per (processor, line): `word → id`.
    unflushed: BTreeMap<(ProcId, u64), BTreeMap<usize, WriteId>>,
}

impl ValueTracker {
    pub(crate) fn new(num_procs: usize) -> Self {
        ValueTracker { seq: vec![0; num_procs], home: BTreeMap::new(), unflushed: BTreeMap::new() }
    }

    /// Processor `p` issues its next store to `(line, word)`.
    pub(crate) fn on_write(&mut self, p: ProcId, line: u64, word: usize) {
        self.seq[p] += 1;
        let id = WriteId { proc: p, seq: self.seq[p] };
        self.unflushed.entry((p, line)).or_default().insert(word, id);
    }

    /// Processor `p` flushes the words in `mask` of `line` toward home.
    /// Words with no unflushed id (already flushed by an earlier path, e.g.
    /// a coalescing-buffer drain racing an eviction) are ignored.
    pub(crate) fn on_flush(&mut self, p: ProcId, line: u64, mask: u64) {
        let Some(words) = self.unflushed.get_mut(&(p, line)) else {
            return;
        };
        let mut m = mask;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(id) = words.remove(&w) {
                self.home.insert((line, w), id);
            }
        }
        if words.is_empty() {
            self.unflushed.remove(&(p, line));
        }
    }

    /// The final symbolic memory: home overlaid with unflushed words.
    /// Returns the memory plus every `(line, word)` two nodes both held
    /// unflushed — nonempty only for racy programs.
    pub(crate) fn final_memory(&self) -> (SymbolicMemory, Vec<(u64, usize)>) {
        let mut mem = self.home.clone();
        let mut owner: BTreeMap<(u64, usize), ProcId> = BTreeMap::new();
        let mut conflicts = Vec::new();
        for (&(p, line), words) in &self.unflushed {
            for (&w, &id) in words {
                if let Some(&prev) = owner.get(&(line, w)) {
                    if prev != p {
                        conflicts.push((line, w));
                    }
                }
                owner.insert((line, w), p);
                mem.insert((line, w), id);
            }
        }
        (mem, conflicts)
    }

    /// Borrow the tracker's three components for checkpointing:
    /// `(seq, home, unflushed)`. All `BTreeMap`s, so iteration is sorted
    /// and two captures of equal trackers serialize identically.
    #[allow(clippy::type_complexity)]
    pub(crate) fn save_parts(
        &self,
    ) -> (&[u64], &SymbolicMemory, &BTreeMap<(ProcId, u64), BTreeMap<usize, WriteId>>) {
        (&self.seq, &self.home, &self.unflushed)
    }

    /// Rebuild a tracker from checkpointed parts.
    pub(crate) fn from_parts(
        seq: Vec<u64>,
        home: SymbolicMemory,
        unflushed: BTreeMap<(ProcId, u64), BTreeMap<usize, WriteId>>,
    ) -> Self {
        ValueTracker { seq, home, unflushed }
    }

    /// Fold the tracker state into a hasher (state fingerprinting).
    pub(crate) fn hash_into<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.seq.hash(h);
        for (k, v) in &self.home {
            (k, v).hash(h);
        }
        for (k, words) in &self.unflushed {
            k.hash(h);
            for (w, id) in words {
                (w, id).hash(h);
            }
        }
    }
}

impl super::Machine {
    /// Record an issued store with the value tracker, if enabled.
    #[inline]
    pub(crate) fn note_write(&mut self, p: ProcId, line: lrc_sim::LineAddr, word: usize) {
        if let Some(v) = self.values.as_mut() {
            v.on_write(p, line.0, word);
        }
    }

    /// Record a dirty-word flush with the value tracker, if enabled.
    #[inline]
    pub(crate) fn note_flush(&mut self, p: ProcId, line: lrc_sim::LineAddr, mask: u64) {
        if let Some(v) = self.values.as_mut() {
            v.on_flush(p, line.0, mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_flush_moves_word_home() {
        let mut v = ValueTracker::new(2);
        v.on_write(0, 5, 1);
        v.on_write(0, 5, 2);
        let (mem, _) = v.final_memory();
        assert_eq!(mem[&(5, 1)], WriteId { proc: 0, seq: 1 });
        v.on_flush(0, 5, 0b110);
        let (mem, conflicts) = v.final_memory();
        assert_eq!(mem[&(5, 2)], WriteId { proc: 0, seq: 2 });
        assert!(conflicts.is_empty());
        assert!(v.unflushed.is_empty());
    }

    #[test]
    fn later_write_wins_at_home() {
        let mut v = ValueTracker::new(2);
        v.on_write(0, 3, 0);
        v.on_flush(0, 3, 1);
        v.on_write(1, 3, 0);
        v.on_flush(1, 3, 1);
        let (mem, _) = v.final_memory();
        assert_eq!(mem[&(3, 0)], WriteId { proc: 1, seq: 1 });
    }

    #[test]
    fn unflushed_overlays_home() {
        let mut v = ValueTracker::new(2);
        v.on_write(0, 7, 4);
        v.on_flush(0, 7, 1 << 4);
        v.on_write(1, 7, 4); // unflushed, newer
        let (mem, conflicts) = v.final_memory();
        assert_eq!(mem[&(7, 4)], WriteId { proc: 1, seq: 1 });
        assert!(conflicts.is_empty());
    }

    #[test]
    fn racy_double_unflushed_reports_conflict() {
        let mut v = ValueTracker::new(2);
        v.on_write(0, 9, 0);
        v.on_write(1, 9, 0);
        let (_, conflicts) = v.final_memory();
        assert_eq!(conflicts, vec![(9, 0)]);
    }

    #[test]
    fn flush_of_unwritten_words_is_ignored() {
        let mut v = ValueTracker::new(1);
        v.on_write(0, 1, 0);
        v.on_flush(0, 1, 0b10); // word 1 was never written
        let (mem, _) = v.final_memory();
        assert_eq!(mem.get(&(1, 1)), None);
        // Word 0 is still unflushed and appears via the overlay.
        assert_eq!(mem[&(1, 0)], WriteId { proc: 0, seq: 1 });
    }
}

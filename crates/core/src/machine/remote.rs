//! Cache-side message handling: replies arriving back at a requester, and
//! third-party traffic (eager invalidations, lazy write notices, 3-hop
//! forwards) arriving at a node that caches the line.

use super::Machine;
use crate::msg::{Msg, MsgKind, WriteGrant};
use lrc_mem::LineState;
use lrc_sim::{Cycle, LineAddr};
use lrc_trace::StateChange;

impl Machine {
    /// Dispatch a message addressed to a cache/protocol processor.
    pub(crate) fn handle_at_cache(&mut self, t: Cycle, m: Msg) {
        match m.kind {
            MsgKind::ReadReply { line, weak } => self.on_read_reply(t, m, line, weak),
            MsgKind::WriteReply { line, grant, with_data, weak } => {
                self.on_write_reply(t, m, line, grant, with_data, weak)
            }
            MsgKind::WriteAck { line } => self.on_write_ack(t, m, line),
            MsgKind::WriteThroughAck { .. } => {
                // Saturating under a crash plan: recovery may have written
                // this ack off already (false suspicion, late real ack).
                let armed = self.crash.is_some();
                let n = &mut self.nodes[m.dst].wt_unacked;
                *n = if armed { n.saturating_sub(1) } else { *n - 1 };
                self.try_complete_release(m.dst, t);
            }
            MsgKind::WriteBackAck { .. } => {
                let armed = self.crash.is_some();
                let n = &mut self.nodes[m.dst].wbk_unacked;
                *n = if armed { n.saturating_sub(1) } else { *n - 1 };
                self.try_complete_release(m.dst, t);
            }
            MsgKind::Invalidate { line } => self.on_invalidate(t, m, line),
            MsgKind::WriteNotice { line } => self.on_write_notice(t, m, line),
            MsgKind::Forward { line, requester, for_write, ep } => {
                self.on_forward(t, m, line, requester, for_write, ep)
            }
            MsgKind::OwnerData { line, for_write } => self.on_owner_data(t, m, line, for_write),
            MsgKind::BusyNack { .. } => self.on_busy_nack(t, m),
            MsgKind::ForwardCancel { line, ep } => self.on_forward_cancel(t, m, line, ep),
            _ => unreachable!("not a cache-side message: {:?}", m.kind),
        }
    }

    /// Data arrived for a read miss (or a lazy-ext write-miss fetch).
    fn on_read_reply(&mut self, t: Cycle, m: Msg, line: LineAddr, weak: bool) {
        let p = m.dst;
        let fill_done = self.nodes[p].bus.transfer(t, self.cfg.line_size as u64);
        if self.nodes[p].cache.contains(line) {
            self.nodes[p].cache.touch(line);
        } else {
            self.install_line(p, fill_done, line, LineState::ReadOnly);
        }
        if weak && self.protocol.is_lazy() {
            self.queue_pending_inval(p, line);
        }
        self.complete_data_leg(p, fill_done, line);
    }

    /// Grant (and possibly data) arrived for a write request.
    fn on_write_reply(
        &mut self,
        t: Cycle,
        m: Msg,
        line: LineAddr,
        grant: WriteGrant,
        with_data: bool,
        weak: bool,
    ) {
        let p = m.dst;
        let done_t = if with_data {
            let fill_done = self.nodes[p].bus.transfer(t, self.cfg.line_size as u64);
            self.install_line(p, fill_done, line, LineState::ReadWrite);
            fill_done
        } else {
            t
        };
        if weak && self.protocol.is_lazy() && self.nodes[p].cache.contains(line) {
            self.queue_pending_inval(p, line);
        }
        if grant == WriteGrant::Pending {
            if let Some(o) = self.nodes[p].outstanding.get_mut(&line.0) {
                if o.early_ack {
                    o.early_ack = false; // the ack already arrived
                } else {
                    o.waiting_ack = true;
                }
            }
        }
        self.complete_data_leg(p, done_t, line);
    }

    /// Final acknowledgement after an invalidation / notice collection.
    fn on_write_ack(&mut self, t: Cycle, m: Msg, line: LineAddr) {
        let p = m.dst;
        if let Some(o) = self.nodes[p].outstanding.get_mut(&line.0) {
            if o.waiting_ack {
                o.waiting_ack = false;
            } else {
                // Beat the WriteReply{Pending} here; remember for its arrival.
                o.early_ack = true;
            }
        }
        self.finish_outstanding_if_done(p, t, line);
        self.serve_parked_forward(p, t, line);
        self.try_complete_release(p, t);
    }

    /// Shared completion path once a transaction's data/grant leg is done:
    /// clears `waiting_data`, retires write-buffer entries, resumes a
    /// stalled processor, and re-checks the release fence.
    fn complete_data_leg(&mut self, p: usize, t: Cycle, line: LineAddr) {
        let (retire, resume, stale) = match self.nodes[p].outstanding.get_mut(&line.0) {
            Some(o) => {
                o.waiting_data = false;
                let r = (o.retire_wb, o.resume_proc, o.stale_on_fill);
                o.retire_wb = false;
                o.stale_on_fill = false;
                r
            }
            None => (false, false, false),
        };
        if stale {
            // RAC race resolution: the fill satisfies the one waiting
            // access, then the copy is stale. Eager protocols drop it on
            // the spot; lazy ones queue the acquire-time invalidation the
            // overtaken notice asked for.
            if self.protocol.is_lazy() {
                self.queue_pending_inval(p, line);
            } else if self.nodes[p].cache.invalidate(line).is_some() {
                self.stats.procs[p].eager_invalidations += 1;
                if let Some(c) = self.classifier.as_mut() {
                    c.on_invalidate(p, line);
                }
                if self.obs.is_some() {
                    self.obs_state(t, p, line.0, StateChange::Invalidate { eager: true });
                }
                let home = self.home_of(line);
                self.send(t, p, home, MsgKind::EvictNotify { line, was_writer: false });
            }
        }
        if retire {
            self.nodes[p].wb.mark_ready(line);
            self.retire_wb_entries(p, t);
        }
        if resume {
            // SC blocking writes commit their words only when the whole
            // transaction (including invalidation acks) is done.
            let o = *self.nodes[p].outstanding.get(&line.0).expect("resume with entry");
            if o.done() {
                self.nodes[p].outstanding.remove(&line.0);
                if o.apply_words != 0 {
                    self.install_written_line(p, t, line, o.apply_words);
                }
                self.resume(p, t);
            }
            // else: the WriteAck path resumes the processor.
        } else {
            self.finish_outstanding_if_done(p, t, line);
        }
        self.serve_parked_forward(p, t, line);
        self.try_complete_release(p, t);
    }

    /// If a 3-hop forward was deferred waiting for our own fill of `line`,
    /// serve it now that the transaction has settled.
    fn serve_parked_forward(&mut self, p: usize, t: Cycle, line: LineAddr) {
        if self.nodes[p].outstanding.contains_key(&line.0) {
            return; // still in flight (e.g. acks pending)
        }
        if let Some(m) = self.nodes[p].parked_forwards.remove(&line.0) {
            if let MsgKind::Forward { line, requester, for_write, ep } = m.kind {
                self.on_forward(t, m, line, requester, for_write, ep);
            }
        }
    }

    /// Deallocate a finished transaction entry; if an SC write was waiting
    /// on it, commit and resume.
    fn finish_outstanding_if_done(&mut self, p: usize, t: Cycle, line: LineAddr) {
        let Some(o) = self.nodes[p].outstanding.get(&line.0).copied() else {
            return;
        };
        if !o.done() {
            return;
        }
        self.nodes[p].outstanding.remove(&line.0);
        if o.apply_words != 0 {
            self.install_written_line(p, t, line, o.apply_words);
        }
        if o.resume_proc {
            self.resume(p, t);
        }
    }

    /// Eager invalidation of this node's copy.
    fn on_invalidate(&mut self, t: Cycle, m: Msg, line: LineAddr) {
        let p = m.dst;
        let done = self.nodes[p].pp.occupy(t, self.cfg.write_notice_cost);
        let write_txn = self.nodes[p]
            .outstanding
            .get(&line.0)
            .is_some_and(|o| o.retire_wb || o.apply_words != 0);
        if write_txn {
            // The home serializes invalidation rounds, so an invalidation
            // reaching a node with a *newer* write grant in flight is stale
            // (it targeted the copy we held before our ownership request).
            // Keep / await the fresh copy; just acknowledge.
        } else if self.nodes[p].cache.invalidate(line).is_some() {
            self.stats.procs[p].eager_invalidations += 1;
            if let Some(c) = self.classifier.as_mut() {
                c.on_invalidate(p, line);
            }
            if self.obs.is_some() {
                self.obs_state(done, p, line.0, StateChange::Invalidate { eager: true });
            }
        } else if let Some(o) = self.nodes[p].outstanding.get_mut(&line.0) {
            // RAC race: the invalidation overtook our own read fill. The
            // fill may satisfy the one waiting load and must then drop.
            o.stale_on_fill = true;
        }
        // Always acknowledge — the home counted us when it sent this.
        self.send(done, p, m.src, MsgKind::InvAck { line });
    }

    /// Lazy write notice: queue the line for invalidation at the next
    /// acquire.
    fn on_write_notice(&mut self, t: Cycle, m: Msg, line: LineAddr) {
        let p = m.dst;
        let done = self.nodes[p].pp.occupy(t, self.cfg.write_notice_cost);
        self.stats.procs[p].notices_received += 1;
        if self.nodes[p].cache.contains(line) {
            self.queue_pending_inval(p, line);
        } else if let Some(o) = self.nodes[p].outstanding.get_mut(&line.0) {
            // The notice overtook our own fill: flag it when it lands.
            o.stale_on_fill = true;
        }
        self.send(done, p, m.src, MsgKind::NoticeAck { line });
    }

    /// Eager 3-hop: the home forwarded a request to us, the dirty owner.
    fn on_forward(&mut self, t: Cycle, m: Msg, line: LineAddr, requester: usize, for_write: bool, ep: u64) {
        let p = m.dst;
        let home = m.src;
        // A delivery-reordering mode (fault-plan retransmission, checker
        // exploration) can deliver a cancelled episode's Forward after its
        // ForwardCancel; only then must we peek at the home's episode table
        // to drop it on sight. Production runs never need the cross-node
        // peek: a stale Forward always finds our own transaction outstanding
        // (below) and parks until the cancel lands.
        if self.delivery_reordering_possible() && self.busy_info.get(line.0).is_none_or(|e| e.id != ep) {
            return;
        }
        let done = self.nodes[p].pp.occupy(t, self.cfg.dir_cost(self.protocol));
        if self.nodes[p].outstanding.contains_key(&line.0) {
            // Our own transaction on this line is still settling — a fill
            // for a copy the directory already registered ("phantom owner"),
            // or a request racing with this episode at the home. Park the
            // forward: it is re-examined when the transaction settles, and a
            // ForwardCancel removes it first if the home resolved the
            // episode from memory in the meantime.
            self.nodes[p].parked_forwards.insert(line.0, m);
            return;
        }
        if !self.nodes[p].cache.contains(line) {
            // Genuinely lost the line (eviction/write-back race): tell the
            // home to serve the requester from memory.
            self.send(done, p, home, MsgKind::ForwardNack { line, requester, for_write, ep });
            return;
        }
        // We are supplying the data: under a delivery-reordering mode, mark
        // the episode served so the home knows a copy-back is coming and
        // must simply be awaited. In a production run the flag is never
        // consulted — our copy-back reaches the home ahead of any later
        // request of ours on the same channel — and skipping the write
        // keeps shards independent.
        if self.delivery_reordering_possible() {
            if let Some(e) = self.busy_info.get_mut(line.0) {
                e.served = true;
            }
        }
        // The copy-back carries the full line: the owner's unflushed dirty
        // words reach home memory (capture them before the copy is
        // invalidated or demoted below).
        let dirty = self.nodes[p].cache.dirty_words(line);
        self.note_flush(p, line, dirty);
        if for_write {
            self.nodes[p].cache.invalidate(line);
            if let Some(c) = self.classifier.as_mut() {
                c.on_invalidate(p, line);
            }
            self.stats.procs[p].eager_invalidations += 1;
            if self.obs.is_some() {
                self.obs_state(done, p, line.0, StateChange::Invalidate { eager: true });
            }
        } else {
            // Demote to read-only; data is being copied back to memory.
            self.nodes[p].cache.insert(line, LineState::ReadOnly);
            self.nodes[p].cache.clear_dirty(line);
        }
        self.send(done, p, requester, MsgKind::OwnerData { line, for_write });
        self.send(done, p, home, MsgKind::CopyBack { line, demoted_to_shared: !for_write, ep });
    }

    /// The home cancelled forward episode `ep` (our own request for the line
    /// reached it first and it served the forward's requester from memory):
    /// drop the matching parked forward. A parked forward from a *newer*
    /// episode is left alone — the episode id must match.
    fn on_forward_cancel(&mut self, t: Cycle, m: Msg, line: LineAddr, ep: u64) {
        let p = m.dst;
        let _ = self.nodes[p].pp.occupy(t, self.cfg.write_notice_cost);
        let matches = self.nodes[p]
            .parked_forwards
            .get(&line.0)
            .is_some_and(|f| matches!(f.kind, MsgKind::Forward { ep: fep, .. } if fep == ep));
        if matches {
            self.nodes[p].parked_forwards.remove(&line.0);
        }
    }

    /// Second leg of a 3-hop: the owner's data arrives at the requester.
    fn on_owner_data(&mut self, t: Cycle, m: Msg, line: LineAddr, for_write: bool) {
        let p = m.dst;
        let fill_done = self.nodes[p].bus.transfer(t, self.cfg.line_size as u64);
        let state = if for_write { LineState::ReadWrite } else { LineState::ReadOnly };
        if self.nodes[p].cache.contains(line) {
            self.nodes[p].cache.insert(line, state);
        } else {
            self.install_line(p, fill_done, line, state);
        }
        self.complete_data_leg(p, fill_done, line);
    }
}

//! Acquire, release, barrier, and fence semantics, plus the lock/barrier
//! message services.
//!
//! This is where the protocols differ most visibly:
//!
//! * **SC** — locks and barriers are plain message round-trips; every access
//!   is already globally performed, so releases need no fence.
//! * **ERC** — a release stalls until the write buffer drains and every
//!   outstanding coherence transaction (including invalidation acks) has
//!   completed. Acquires are plain.
//! * **LRC / LRC-EXT** — releases additionally flush the coalescing buffer
//!   (and, for LRC-EXT, the deferred write notices) and await their acks.
//!   Acquires invalidate every line named by a buffered write notice; the
//!   paper hides much of that latency under the lock-grant wait, which we
//!   model by starting invalidations at acquire-issue time and finishing
//!   any new arrivals after the grant.

use super::Machine;
use crate::msg::{Msg, MsgKind};
use crate::node::{PendingSync, ProcStatus};
use crate::sync::LockAction;
use lrc_sim::{Cycle, LineAddr, LockId, ProcId, StallKind};
use lrc_trace::{StateChange, SyncOp};

impl Machine {
    /// Begin a lock acquire: send the request and (lazy) start processing
    /// pending invalidations under the lock-wait shadow.
    pub(crate) fn begin_acquire(&mut self, p: ProcId, now: Cycle, lock: LockId) {
        let home = self.cfg.lock_home(lock);
        self.send(now, p, home, MsgKind::LockAcq { lock });
        if self.obs.is_some() {
            self.obs_sync(now, p, SyncOp::AcquireStart, lock as u64);
        }
        self.block(p, now, StallKind::Sync, ProcStatus::WaitingLock(lock));
        if self.protocol.is_lazy() {
            let done = self.process_pending_invals(p, now);
            self.nodes[p].inval_done_at = done;
        }
    }

    /// Begin a release (lock release or barrier arrival). Returns
    /// `Some(resume_time)` if the processor can continue immediately (lock
    /// release with an already-clear fence); `None` if it blocked.
    pub(crate) fn begin_release(
        &mut self,
        p: ProcId,
        now: Cycle,
        pending: PendingSync,
    ) -> Option<Cycle> {
        self.flush_release_buffers(p, now);

        let fence_ok =
            self.protocol == lrc_sim::Protocol::Sc || self.nodes[p].fence_clear(self.protocol);
        if fence_ok {
            match pending {
                PendingSync::LockRelease(lock) => {
                    let home = self.cfg.lock_home(lock);
                    self.send(now, p, home, MsgKind::LockRel { lock });
                    self.note_race_release(p, lock);
                    if self.obs.is_some() {
                        self.obs_sync(now, p, SyncOp::Release, lock as u64);
                    }
                    self.stats.procs[p].breakdown.add(StallKind::Cpu, 1);
                    Some(now + 1)
                }
                PendingSync::Barrier(bar) => {
                    let home = self.cfg.barrier_home(bar);
                    self.send(now, p, home, MsgKind::BarrierArrive { bar });
                    self.note_race_barrier_arrive(p, bar);
                    if self.obs.is_some() {
                        self.obs_sync(now, p, SyncOp::BarrierArrive, bar as u64);
                    }
                    self.block(p, now, StallKind::Sync, ProcStatus::InBarrier(bar));
                    None
                }
            }
        } else {
            self.block(p, now, StallKind::Sync, ProcStatus::Releasing(pending));
            None
        }
    }

    /// Flush everything a release must push out: the lazy-ext deferred
    /// write notices (the protocol's defining cost) and the coalescing
    /// buffer. Also invoked while blocked in `Releasing`, because a write
    /// that retires *after* the release began still lands in these buffers.
    fn flush_release_buffers(&mut self, p: ProcId, now: Cycle) {
        if self.protocol == lrc_sim::Protocol::LrcExt {
            // Ascending line order: the flush sends messages, and message
            // order is part of the simulator's deterministic behavior.
            let mut delayed: Vec<(u64, u64)> = self.nodes[p].delayed_writes.drain().collect();
            delayed.sort_unstable_by_key(|&(l, _)| l);
            for (l0, words) in delayed {
                let line = LineAddr(l0);
                self.note_flush(p, line, words);
                let o = self.nodes[p].outstanding.entry(l0).or_default();
                o.waiting_data = true;
                let home = self.home_of(line);
                self.send(now, p, home, MsgKind::WriteReq { line, had_copy: true, words });
            }
        }
        if self.protocol.is_lazy() {
            let entries = self.nodes[p].cb.drain_all();
            for e in entries {
                self.send_write_through(p, now, e.line, e.words);
            }
        }
    }

    /// Re-check a blocked release whenever something drains. Called from
    /// every completion path; cheap when the processor is not releasing.
    pub(crate) fn try_complete_release(&mut self, p: ProcId, t: Cycle) {
        let ProcStatus::Releasing(pending) = self.nodes[p].status else {
            return;
        };
        self.flush_release_buffers(p, t);
        if !self.nodes[p].fence_clear(self.protocol) {
            return;
        }
        match pending {
            PendingSync::LockRelease(lock) => {
                let home = self.cfg.lock_home(lock);
                self.send(t, p, home, MsgKind::LockRel { lock });
                self.note_race_release(p, lock);
                if self.obs.is_some() {
                    self.obs_sync(t, p, SyncOp::Release, lock as u64);
                }
                self.resume(p, t);
            }
            PendingSync::Barrier(bar) => {
                let home = self.cfg.barrier_home(bar);
                self.send(t, p, home, MsgKind::BarrierArrive { bar });
                self.note_race_barrier_arrive(p, bar);
                if self.obs.is_some() {
                    self.obs_sync(t, p, SyncOp::BarrierArrive, bar as u64);
                }
                // The sync stall continues until the barrier releases.
                self.nodes[p].status = ProcStatus::InBarrier(bar);
            }
        }
    }

    /// Fence op: force pending invalidations to be applied immediately (the
    /// paper's suggestion for programs with data races). Blocking; counts
    /// as synchronization time. No-op for the eager protocols.
    pub(crate) fn do_fence(&mut self, p: ProcId, now: Cycle) -> Cycle {
        if !self.protocol.is_lazy() {
            return now;
        }
        let done = self.process_pending_invals(p, now);
        self.stats.procs[p].breakdown.add(StallKind::Sync, done - now);
        done
    }

    /// Queue `line` for invalidation at `p`'s next acquire, honoring the
    /// finite write-notice buffer: when the set would exceed its cap, the
    /// precise list collapses into the conservative [`crate::node::Node::inval_all`]
    /// bit (invalidate everything at the next acquire). Correct by
    /// construction — a superset of the precise invalidation set.
    pub(crate) fn queue_pending_inval(&mut self, p: ProcId, line: LineAddr) {
        let node = &mut self.nodes[p];
        if node.inval_all {
            return; // already collapsed: the next acquire sweeps everything
        }
        if let Some(cap) = self.cfg.resources.write_notice_buffer {
            if node.pending_invals.len() >= cap && !node.pending_invals.contains(&line.0) {
                node.pending_invals.clear();
                node.inval_all = true;
                self.stats.resources.wn_overflows += 1;
                if self.obs.is_some() {
                    let at = self.queue.now();
                    self.obs_resource(
                        at,
                        p,
                        lrc_trace::ResourceEv::WnOverflow { cap: cap.min(u32::MAX as usize) as u32 },
                    );
                }
                return;
            }
        }
        node.pending_invals.insert(line.0);
        let len = node.pending_invals.len() as u64;
        if len > self.stats.resources.peak_pending_invals {
            self.stats.resources.peak_pending_invals = len;
        }
    }

    /// Apply every buffered write notice: invalidate the named lines, flush
    /// any of our own pending data for them, and tell the homes we no
    /// longer cache them (which lets blocks revert from Weak).
    ///
    /// Returns the protocol-processor completion time.
    pub(crate) fn process_pending_invals(&mut self, p: ProcId, t: Cycle) -> Cycle {
        if self.nodes[p].pending_invals.is_empty() {
            // `inval_all` implies the set is empty (it collapsed into the
            // bit), so the overflow fallback costs one branch on a path the
            // unbounded configuration already takes.
            if self.nodes[p].inval_all {
                return self.process_inval_all(p, t);
            }
            return t;
        }
        // Drain into a pooled scratch vector and process in ascending line
        // order: the batch sends messages, so its order is part of the
        // simulator's deterministic behavior.
        let mut lines = std::mem::take(&mut self.inval_scratch);
        lines.extend(self.nodes[p].pending_invals.drain());
        lines.sort_unstable();
        let cost = lines.len() as u64 * self.cfg.write_notice_cost;
        let done = self.nodes[p].pp.occupy(t, cost);
        for &l0 in &lines {
            self.apply_acquire_inval(p, done, l0);
        }
        lines.clear();
        self.inval_scratch = lines;
        done
    }

    /// The write-notice buffer overflowed: conservatively invalidate every
    /// line this node holds in any structure — cache, coalescing buffer,
    /// and (lazy-ext) delayed-notice table — instead of a precise list.
    /// Each swept line pays the same per-line protocol-processor cost as a
    /// precise acquire invalidation.
    fn process_inval_all(&mut self, p: ProcId, t: Cycle) -> Cycle {
        self.nodes[p].inval_all = false;
        self.stats.resources.overflow_fallbacks += 1;
        let mut lines = std::mem::take(&mut self.inval_scratch);
        lines.extend(self.nodes[p].cache.iter().map(|r| r.line.0));
        lines.extend(self.nodes[p].cb.iter().map(|e| e.line.0));
        if self.protocol == lrc_sim::Protocol::LrcExt {
            lines.extend(self.nodes[p].delayed_writes.keys().copied());
        }
        lines.sort_unstable();
        lines.dedup();
        self.stats.resources.overflow_invalidations += lines.len() as u64;
        let cost = lines.len() as u64 * self.cfg.write_notice_cost;
        let done = self.nodes[p].pp.occupy(t, cost);
        for &l0 in &lines {
            self.apply_acquire_inval(p, done, l0);
        }
        lines.clear();
        self.inval_scratch = lines;
        done
    }

    /// One acquire-time invalidation: flush our own pending data for the
    /// line, drop the copy, and notify the home. Shared between the precise
    /// batch and the overflow sweep.
    fn apply_acquire_inval(&mut self, p: ProcId, done: Cycle, l0: u64) {
        let line = LineAddr(l0);
        self.stats.procs[p].acquire_invalidations += 1;
        // Our own unflushed writes to the line must reach memory first.
        if let Some(e) = self.nodes[p].cb.take(line) {
            self.send_write_through(p, done, e.line, e.words);
        }
        if self.protocol == lrc_sim::Protocol::LrcExt {
            if let Some(words) = self.nodes[p].delayed_writes.remove(&l0) {
                self.note_flush(p, line, words);
                let o = self.nodes[p].outstanding.entry(l0).or_default();
                o.waiting_data = true;
                let home = self.home_of(line);
                self.send(done, p, home, MsgKind::WriteReq { line, had_copy: true, words });
            }
        }
        if let Some(ev) = self.nodes[p].cache.invalidate(line) {
            if let Some(c) = self.classifier.as_mut() {
                c.on_invalidate(p, line);
            }
            if self.obs.is_some() {
                self.obs_state(done, p, l0, StateChange::Invalidate { eager: false });
            }
            let home = self.home_of(line);
            let was_writer = ev.state == lrc_mem::LineState::ReadWrite;
            self.send(done, p, home, MsgKind::EvictNotify { line, was_writer });
        }
    }

    /// Lock and barrier protocol messages.
    pub(crate) fn handle_sync_msg(&mut self, t: Cycle, m: Msg) {
        match m.kind {
            MsgKind::LockAcq { lock } => {
                let h = m.dst;
                let done = self.nodes[h].pp.occupy(t, self.cfg.sync_service_cost);
                if let LockAction::Grant(n) = self.nodes[h].locks.acquire(lock, m.src) {
                    self.grant_log.push((lock, n));
                    self.send(done, h, n, MsgKind::LockGrant { lock });
                }
            }
            MsgKind::LockRel { lock } => {
                let h = m.dst;
                let done = self.nodes[h].pp.occupy(t, self.cfg.sync_service_cost);
                if let LockAction::Grant(n) = self.nodes[h].locks.release(lock, m.src) {
                    self.grant_log.push((lock, n));
                    self.send(done, h, n, MsgKind::LockGrant { lock });
                }
            }
            MsgKind::LockGrant { lock } => {
                let p = m.dst;
                if self.crash.is_some() && self.nodes[p].status != ProcStatus::WaitingLock(lock)
                {
                    // Crash recovery can self-grant a wait (degraded mode)
                    // or re-grant a reclaimed lock; a straggling real grant
                    // arriving afterwards must not double-resume.
                    return;
                }
                debug_assert_eq!(self.nodes[p].status, ProcStatus::WaitingLock(lock));
                self.stats.procs[p].lock_acquires += 1;
                self.note_race_acquire(p, lock);
                let resume_at = self.finish_acquire(p, t);
                if self.obs.is_some() {
                    self.obs_sync(resume_at, p, SyncOp::AcquireDone, lock as u64);
                }
                self.resume(p, resume_at);
            }
            MsgKind::BarrierArrive { bar } => {
                let h = m.dst;
                let done = self.nodes[h].pp.occupy(t, self.cfg.sync_service_cost);
                let expected = self.barrier_expected(h);
                if let Some(all) = self.nodes[h].barriers.arrive(bar, m.src, expected) {
                    let mut send_t = done;
                    for n in all {
                        send_t = self.nodes[h].pp.occupy(send_t, self.cfg.write_notice_cost);
                        self.send(send_t, h, n, MsgKind::BarrierRelease { bar });
                    }
                }
            }
            MsgKind::BarrierRelease { bar } => {
                let p = m.dst;
                if self.crash.is_some() && self.nodes[p].status != ProcStatus::InBarrier(bar) {
                    // Same drop guard as grants: recovery may already have
                    // released this waiter.
                    return;
                }
                debug_assert_eq!(self.nodes[p].status, ProcStatus::InBarrier(bar));
                self.stats.procs[p].barriers += 1;
                self.note_race_barrier_depart(p, bar);
                let resume_at = self.finish_acquire(p, t);
                if self.obs.is_some() {
                    self.obs_sync(resume_at, p, SyncOp::BarrierDone, bar as u64);
                }
                self.resume(p, resume_at);
            }
            _ => unreachable!("not a sync message: {:?}", m.kind),
        }
    }

    /// The acquire side of a grant/barrier-release: under the lazy
    /// protocols, process any write notices that arrived while we waited
    /// (the earlier batch ran under the wait's shadow).
    fn finish_acquire(&mut self, p: ProcId, t: Cycle) -> Cycle {
        if !self.protocol.is_lazy() {
            return t;
        }
        let base = t.max(self.nodes[p].inval_done_at);
        let done = self.process_pending_invals(p, base);
        self.nodes[p].inval_done_at = done;
        done
    }
}

//! Crash-stop node failures: lease-based failure detection, directory
//! reclamation, and degraded-mode progress.
//!
//! A [`lrc_mesh::CrashPlan`] kills nodes at deterministic cycles (or, in
//! checker mode, after an exact number of handled events). A crash is
//! *crash-stop*: the node's volatile state — cache, write buffers, NI
//! queues, protocol tables, in-flight messages — vanishes, and the node
//! never sends or receives again. Peers observe only silence.
//!
//! Detection is lease-based. While a plan is armed, every live node
//! heartbeats every peer each [`lrc_mesh::CrashPlan::heartbeat_every`]
//! cycles, and any protocol message refreshes the receiver's lease on its
//! sender. A peer silent beyond [`lrc_mesh::CrashPlan::lease_timeout`] is
//! declared dead, independently, by each observer.
//!
//! Declaring a peer dead triggers reclamation at the observer:
//!
//! * **home side** — directory entries on the observer's lines drop the
//!   dead node. A dirty-owned line is a *lost update*, recorded as a typed
//!   [`lrc_sim::DataLossEvent`]; clean copies are reclaimed silently.
//!   Pending ack collections forge the dead node's acks so waiting writers
//!   complete; busy 3-hop episodes involving the dead node are cancelled
//!   and the survivor served from (possibly stale) memory; parked requests
//!   from the dead node are dropped; locks it held pass to the next waiter
//!   and its barrier slots are released.
//! * **requester side** — unacked write-through/write-back credit owed by
//!   the dead node is written off, outstanding misses homed there complete
//!   locally (degraded fill), and a lock/barrier wait homed there is
//!   self-granted — mutual exclusion for that lock is lost, but counted,
//!   never silent.
//!
//! After suspicion, sends toward the dead node are intercepted at the send
//! boundary: requests forge their own replies (degraded mode) and
//! everything else is suppressed. Every action lands in
//! [`lrc_sim::CrashStats`] so degraded semantics are always visible.
//!
//! With no plan armed, `Machine::crash` is `None` and every hook below is
//! one never-taken branch — the zero-cost-when-off guarantee the golden
//! fingerprints pin.

use super::{Event, Machine};
use crate::directory::NodeSet;
use crate::msg::{Msg, MsgKind, WriteGrant};
use crate::node::{Node, ProcStatus};
use lrc_mesh::CrashPlan;
use lrc_sim::{Cycle, DataLossEvent, LineAddr, NodeId, StallReason};
use lrc_trace::CrashEv;

/// All crash-subsystem state, boxed behind `Machine::crash` (`None` = no
/// plan armed, zero cost).
#[derive(Debug, Clone)]
pub(crate) struct CrashCtx {
    /// The installed plan.
    pub plan: CrashPlan,
    /// Nodes that have crashed.
    pub crashed: NodeSet,
    /// Crashed nodes that had not finished their workload — the survivors'
    /// completion target shrinks by this many.
    pub crashed_unfinished: usize,
    /// `suspected[o]` = peers observer `o` has declared dead.
    pub suspected: Vec<NodeSet>,
    /// `last_heard[o][p]` = last cycle observer `o` received anything from
    /// peer `p` (leases).
    pub last_heard: Vec<Vec<Cycle>>,
    /// `wt_to[src][dst]` = write-throughs `src` sent to `dst` and has not
    /// seen acked — the credit written off when `dst` is declared dead.
    pub wt_to: Vec<Vec<u32>>,
    /// `wbk_to[src][dst]` = unacked write-backs, same write-off rule.
    pub wbk_to: Vec<Vec<u32>>,
}

impl CrashCtx {
    /// Fresh context for an `n`-node machine.
    pub fn new(plan: CrashPlan, n: usize) -> Self {
        CrashCtx {
            plan,
            crashed: NodeSet::EMPTY,
            crashed_unfinished: 0,
            suspected: vec![NodeSet::EMPTY; n],
            last_heard: vec![vec![0; n]; n],
            wt_to: vec![vec![0; n]; n],
            wbk_to: vec![vec![0; n]; n],
        }
    }
}

impl Machine {
    /// Seed the crash plan's events into a fresh run: one `CrashNode` per
    /// victim, and the first `LeaseTick` when detection is lease-driven
    /// (checker-driven runs use instantaneous detection instead — a lease
    /// timer would blow up the explored state space for nothing).
    pub(crate) fn schedule_crash_events(&mut self) {
        let Some(c) = self.crash.as_deref() else { return };
        let victims = c.plan.victims.clone();
        let hb = c.plan.heartbeat_every;
        let lease_driven = c.plan.crash_nth.is_none() && !self.choice_driven;
        for (v, at) in victims {
            self.push_ev(at, v, Event::CrashNode { victim: v });
        }
        if lease_driven {
            self.push_ev(hb, 0, Event::LeaseTick);
        }
    }

    /// Does `src` currently treat `dst` as dead?
    #[inline]
    pub(crate) fn crash_suspects(&self, src: NodeId, dst: NodeId) -> bool {
        self.crash
            .as_deref()
            .is_some_and(|c| c.suspected[src].contains(dst))
    }

    /// Dispatch-time filter: should this popped event be dropped because a
    /// crashed node is involved? In-flight messages from or to the dead
    /// node were on its NI when it died — they vanish with it. Only called
    /// when at least one node has crashed.
    pub(crate) fn crash_filter(&mut self, ev: &Event) -> bool {
        let crashed = match self.crash.as_deref() {
            Some(c) => c.crashed,
            None => return false,
        };
        let dead = |n: NodeId| crashed.contains(n);
        let drop = match ev {
            Event::ProcStep(p) => dead(*p),
            Event::CbFlush(p, _) => dead(*p),
            Event::Msg(m) => dead(m.src) || dead(m.dst),
            Event::XMsg { msg, .. } | Event::NiRetry { msg, .. } | Event::NackRetry { msg } => {
                dead(msg.src) || dead(msg.dst)
            }
            // Link-control and retry timers go inert on their own (the
            // in-flight table was purged at crash time); the sampler,
            // lease tick, and further crashes always run.
            _ => false,
        };
        if drop {
            if let Event::NiRetry { .. } = ev {
                // This retry will never be re-submitted: release its slot so
                // resource diagnostics don't report a phantom backlog.
                self.pending_ni_retries -= 1;
            }
        }
        drop
    }

    /// Checker-mode crash timing: kill the plan's victim once exactly `n`
    /// events have been handled. Polled after every dispatched event (one
    /// branch when no plan is armed).
    pub(crate) fn crash_nth_poll(&mut self, t: Cycle) {
        let Some((v, n)) = self.crash.as_deref().and_then(|c| c.plan.crash_nth) else {
            return;
        };
        if self.handled == n {
            self.crash_now(t, v);
        }
    }

    /// Kill node `v` at time `t`: wipe its volatile state, purge its
    /// traffic from the link layer, and (checker mode) let every survivor
    /// detect the death instantly.
    pub(crate) fn crash_now(&mut self, t: Cycle, v: NodeId) {
        if self.crash.as_deref().is_none_or(|c| c.crashed.contains(v)) {
            return;
        }
        let was_finished = self.nodes[v].status == ProcStatus::Finished;
        {
            let c = self.crash.as_deref_mut().expect("checked above");
            c.crashed.insert(v);
            if !was_finished {
                c.crashed_unfinished += 1;
            }
        }
        self.stats.crashes.crashes += 1;
        if self.obs.is_some() {
            self.obs_crash(t, v, CrashEv::NodeCrashed);
        }
        // Crash-stop: everything volatile at the node vanishes. The node
        // object is replaced wholesale (cache, write buffers, outstanding
        // table, lock/barrier service state — all gone).
        let mut fresh = Node::new(&self.cfg);
        fresh.status = ProcStatus::Crashed;
        self.nodes[v] = fresh;
        // The link layer's retransmit buffer lived on the NIs: copies from
        // or to the dead node stop being retransmitted.
        if let Some(xm) = self.xmit.as_deref_mut() {
            xm.in_flight.retain(|_, inf| inf.msg.src != v && inf.msg.dst != v);
        }
        // Checker mode: detection is a deterministic consequence of the
        // crash choice point, not a timer race.
        let instant = self.choice_driven
            || self.crash.as_deref().is_some_and(|c| c.plan.crash_nth.is_some());
        if instant {
            for o in 0..self.cfg.num_procs {
                let live = self
                    .crash
                    .as_deref()
                    .is_some_and(|c| !c.crashed.contains(o));
                if o != v && live {
                    self.declare_dead(t, o, v);
                }
            }
        }
    }

    /// The periodic lease/heartbeat tick: every live node pings every peer
    /// it still trusts, then checks its leases and declares silent peers
    /// dead. Re-arms itself while survivors are still running — detection
    /// is the progress path, so the tick must outlive a wedged protocol
    /// (runaway ticking is bounded by `max_cycles` and the watchdog).
    pub(crate) fn lease_tick(&mut self, t: Cycle) {
        let Some(c) = self.crash.as_deref() else { return };
        let n = self.cfg.num_procs;
        let hb = c.plan.heartbeat_every;
        let lease = c.plan.lease_timeout;
        let crashed = c.crashed;
        let suspected = c.suspected.clone();
        for (src, trusts) in suspected.iter().enumerate().take(n) {
            if crashed.contains(src) {
                continue;
            }
            for dst in 0..n {
                // A dead-but-unsuspected peer still gets pinged (the sender
                // doesn't know); delivery is dropped at dispatch.
                if dst == src || trusts.contains(dst) {
                    continue;
                }
                self.stats.crashes.heartbeats_sent += 1;
                self.send(t, src, dst, MsgKind::Heartbeat);
            }
        }
        for (o, trusts) in suspected.iter().enumerate().take(n) {
            if crashed.contains(o) {
                continue;
            }
            for p in 0..n {
                if p == o || trusts.contains(p) {
                    continue;
                }
                let last = self.crash.as_deref().expect("armed").last_heard[o][p];
                if t.saturating_sub(last) > lease {
                    self.declare_dead(t, o, p);
                }
            }
        }
        if self.finished < self.live_finish_target() {
            self.push_ev(t + hb, 0, Event::LeaseTick);
        }
    }

    /// Observer `o` declares peer `dead` dead: reclaim everything the dead
    /// node holds on `o`'s lines and services (home side), then unwedge
    /// `o`'s own waits on the dead node (requester side). Idempotent per
    /// (observer, dead) pair.
    pub(crate) fn declare_dead(&mut self, t: Cycle, o: NodeId, dead: NodeId) {
        {
            let c = self.crash.as_deref_mut().expect("declare_dead requires a plan");
            if c.suspected[o].contains(dead) {
                return;
            }
            c.suspected[o].insert(dead);
        }
        self.stats.crashes.suspicions += 1;
        if self.obs.is_some() {
            self.obs_crash(t, o, CrashEv::SuspectedDead { dead });
        }

        self.reclaim_directory(t, o, dead);
        self.reclaim_busy_episodes(t, o, dead);
        self.reclaim_parked(t, o, dead);
        self.reclaim_sync_services(t, o, dead);
        self.unwedge_requester(t, o, dead);
    }

    /// Home-side directory reclamation: drop the dead node from every entry
    /// homed at `o`, recording lost dirty lines, and forge the acks it owed
    /// so pending collections complete.
    fn reclaim_directory(&mut self, t: Cycle, o: NodeId, dead: NodeId) {
        // Collect first: the mutation below sends messages (borrow-free).
        let o_lines: Vec<u64> = self
            .dir
            .iter()
            .filter(|&(l, e)| {
                self.home_of(LineAddr(l)) == o
                    && (e.is_sharer(dead) || e.pending.is_some())
            })
            .map(|(l, _)| l)
            .collect();
        let mut forged = 0u64;
        let mut completions: Vec<(u64, Vec<NodeId>)> = Vec::new();
        let mut losses: Vec<u64> = Vec::new();
        for &l in &o_lines {
            let Some(e) = self.dir.get_mut(l) else { continue };
            if e.is_sharer(dead) {
                if e.writers().contains(dead) {
                    losses.push(l);
                } else {
                    self.stats.crashes.clean_lines_reclaimed += 1;
                }
                e.remove(dead);
            }
            if let Some(pc) = e.pending.as_mut() {
                let mut owed = 0u32;
                while pc.take_owed(dead) {
                    owed += 1;
                }
                debug_assert!(pc.awaiting >= owed);
                pc.awaiting -= owed;
                forged += u64::from(owed);
                pc.waiters.retain(|&w| w != dead);
                if pc.awaiting == 0 {
                    let waiters = std::mem::take(&mut pc.waiters);
                    e.pending = None;
                    completions.push((l, waiters));
                }
            }
        }
        for l in losses {
            self.stats.crashes.record_data_loss(DataLossEvent {
                line: l,
                owner: dead as u64,
                home: o as u64,
                detected_at: t,
            });
            if self.obs.is_some() {
                self.obs_crash(t, o, CrashEv::DataLoss { line: l, owner: dead });
            }
        }
        self.stats.crashes.forged_acks += forged;
        for (l, waiters) in completions {
            let line = LineAddr(l);
            for &w in &waiters {
                self.send(t, o, w, MsgKind::WriteAck { line });
            }
            self.recycle_waiters(waiters);
            self.maybe_release_parked(t, line);
        }
    }

    /// Cancel 3-hop forwarding episodes on `o`'s lines that involve the
    /// dead node. A dead *owner* can never supply the data: serve the
    /// surviving requester from (possibly stale) memory — the loss, if any,
    /// was already recorded by the directory sweep. A dead *requester*
    /// frees the entry and tells the surviving owner to drop the forward.
    fn reclaim_busy_episodes(&mut self, t: Cycle, o: NodeId, dead: NodeId) {
        let episodes: Vec<(u64, super::ForwardEp)> = self
            .busy_info
            .iter()
            .filter(|&(l, ep)| {
                self.home_of(LineAddr(l)) == o && (ep.owner == dead || ep.requester == dead)
            })
            .map(|(l, ep)| (l, *ep))
            .collect();
        for (l, ep) in episodes {
            let line = LineAddr(l);
            self.busy_info.remove(l);
            self.stats.crashes.forwards_cancelled += 1;
            if ep.owner == dead {
                {
                    let e = self.dir.entry_or_default(l);
                    e.busy = false;
                    e.remove(dead);
                    if ep.for_write {
                        e.add_writer(ep.requester);
                    } else {
                        e.add_sharer(ep.requester);
                    }
                }
                let mem_done = self.nodes[o].mem.access(t, self.cfg.line_size as u64);
                if ep.for_write {
                    self.send(
                        mem_done,
                        o,
                        ep.requester,
                        MsgKind::WriteReply {
                            line,
                            grant: WriteGrant::Immediate,
                            with_data: true,
                            weak: false,
                        },
                    );
                } else {
                    self.send(mem_done, o, ep.requester, MsgKind::ReadReply { line, weak: false });
                }
                self.maybe_release_parked(mem_done, line);
            } else {
                {
                    let e = self.dir.entry_or_default(l);
                    e.busy = false;
                    e.remove(dead);
                }
                self.send(t, o, ep.owner, MsgKind::ForwardCancel { line, ep: ep.id });
                self.maybe_release_parked(t, line);
            }
        }
    }

    /// Drop requests the dead node parked at home `o` — nobody is waiting
    /// for those replies anymore.
    fn reclaim_parked(&mut self, t: Cycle, o: NodeId, dead: NodeId) {
        let lines: Vec<u64> = self
            .parked
            .iter()
            .filter(|&(l, q)| {
                self.home_of(LineAddr(l)) == o && q.iter().any(|(m, _)| m.src == dead)
            })
            .map(|(l, _)| l)
            .collect();
        for l in lines {
            if let Some(q) = self.parked.get_mut(l) {
                let before = q.len();
                q.retain(|(m, _)| m.src != dead);
                self.stats.crashes.parked_dropped += (before - q.len()) as u64;
                if q.is_empty() {
                    self.parked.remove(l);
                }
            }
            self.maybe_release_parked(t, LineAddr(l));
        }
    }

    /// Reclaim the lock and barrier services homed at `o`: locks the dead
    /// node held pass to the next waiter, its queued acquires disappear,
    /// and its barrier slots are released (possibly completing a barrier
    /// the survivors were waiting in).
    fn reclaim_sync_services(&mut self, t: Cycle, o: NodeId, dead: NodeId) {
        if self.fault == super::Fault::SkipLockReclaim {
            // Injected recovery bug: the dead node's locks stay held
            // forever — survivors queued on them wedge (the liveness
            // violation `lrc-check --crash-nth` must find).
        } else {
            let (grants, reclaimed) = self.nodes[o].locks.purge(dead);
            self.stats.crashes.locks_reclaimed += reclaimed;
            for (lock, next) in grants {
                if self.obs.is_some() {
                    self.obs_crash(t, o, CrashEv::LockReclaimed { lock: lock as u64 });
                }
                self.grant_log.push((lock, next));
                self.send(t, o, next, MsgKind::LockGrant { lock });
            }
        }
        let expected = self.barrier_expected(o);
        let (released, slots) = self.nodes[o].barriers.purge(dead, expected);
        self.stats.crashes.barrier_slots_reclaimed += slots;
        for (bar, arrived) in released {
            if self.obs.is_some() {
                self.obs_crash(t, o, CrashEv::BarrierReclaimed { barrier: bar as u64 });
            }
            let mut send_t = t;
            for p in arrived {
                send_t = self.nodes[o].pp.occupy(send_t, self.cfg.write_notice_cost);
                self.send(send_t, o, p, MsgKind::BarrierRelease { bar });
            }
        }
    }

    /// Requester-side recovery at observer `o`: write off acks the dead
    /// node owed, complete outstanding misses homed there locally, and
    /// self-grant a lock/barrier wait homed there.
    fn unwedge_requester(&mut self, t: Cycle, o: NodeId, dead: NodeId) {
        let (wt, wbk) = {
            let c = self.crash.as_deref_mut().expect("armed");
            (
                std::mem::take(&mut c.wt_to[o][dead]),
                std::mem::take(&mut c.wbk_to[o][dead]),
            )
        };
        if wt > 0 {
            self.nodes[o].wt_unacked = self.nodes[o].wt_unacked.saturating_sub(wt);
            self.stats.crashes.wt_acks_written_off += u64::from(wt);
        }
        if wbk > 0 {
            self.nodes[o].wbk_unacked = self.nodes[o].wbk_unacked.saturating_sub(wbk);
            self.stats.crashes.wbk_acks_written_off += u64::from(wbk);
        }
        let mut stuck: Vec<u64> = self.nodes[o]
            .outstanding
            .keys()
            .copied()
            .filter(|&l| self.home_of(LineAddr(l)) == dead)
            .collect();
        stuck.sort_unstable();
        for l in stuck {
            self.degraded_fill_local(o, t, LineAddr(l));
        }
        match self.nodes[o].status {
            ProcStatus::WaitingLock(lock) if self.cfg.lock_home(lock) == dead => {
                self.stats.crashes.degraded_lock_grants += 1;
                self.forge_reply(t, o, MsgKind::LockGrant { lock });
            }
            ProcStatus::InBarrier(bar) if self.cfg.barrier_home(bar) == dead => {
                self.stats.crashes.degraded_barrier_releases += 1;
                self.forge_reply(t, o, MsgKind::BarrierRelease { bar });
            }
            _ => {}
        }
        self.try_complete_release(o, t);
    }

    /// Complete an outstanding miss on `line` at `p` without the (dead)
    /// home's help: forge the reply legs the entry is still waiting for, so
    /// the fill rides the exact same handler path a real reply would.
    pub(crate) fn degraded_fill_local(&mut self, p: NodeId, t: Cycle, line: LineAddr) {
        let Some(&o) = self.nodes[p].outstanding.get(&line.0) else {
            return;
        };
        self.stats.crashes.degraded_fills += 1;
        if self.obs.is_some() {
            self.obs_crash(t, p, CrashEv::DegradedFill { line: line.0 });
        }
        if o.waiting_data {
            let wants_write = o.retire_wb || o.apply_words != 0;
            let kind = if wants_write {
                MsgKind::WriteReply {
                    line,
                    grant: WriteGrant::Immediate,
                    with_data: true,
                    weak: false,
                }
            } else {
                MsgKind::ReadReply { line, weak: false }
            };
            self.forge_reply(t, p, kind);
        }
        if o.waiting_ack {
            self.forge_reply(t, p, MsgKind::WriteAck { line });
        }
    }

    /// Forge a self-addressed reply event at `p`, delivered one cycle out:
    /// degraded-mode completions reuse the normal receive handlers instead
    /// of duplicating their bookkeeping inline (and the one-cycle delay
    /// keeps them out of the middle of whatever handler is running now).
    pub(crate) fn forge_reply(&mut self, t: Cycle, p: NodeId, kind: MsgKind) {
        self.push_ev(t + 1, p, Event::Msg(Msg { src: p, dst: p, kind }));
    }

    /// Send-boundary interception for a destination the sender suspects
    /// dead: requests forge their own degraded replies; everything else is
    /// suppressed (the dead node has no use for it).
    pub(crate) fn degrade_send(&mut self, now: Cycle, src: NodeId, kind: MsgKind) {
        use MsgKind::*;
        let reply = match kind {
            ReadReq { line } => {
                self.stats.crashes.degraded_fills += 1;
                if self.obs.is_some() {
                    self.obs_crash(now, src, CrashEv::DegradedFill { line: line.0 });
                }
                Some(ReadReply { line, weak: false })
            }
            WriteReq { line, had_copy, .. } => {
                self.stats.crashes.degraded_fills += 1;
                if self.obs.is_some() {
                    self.obs_crash(now, src, CrashEv::DegradedFill { line: line.0 });
                }
                Some(WriteReply {
                    line,
                    grant: WriteGrant::Immediate,
                    with_data: !had_copy,
                    weak: false,
                })
            }
            WriteThrough { line, .. } => {
                self.stats.crashes.wt_acks_written_off += 1;
                Some(WriteThroughAck { line })
            }
            WriteBack { line, .. } => {
                self.stats.crashes.wbk_acks_written_off += 1;
                Some(WriteBackAck { line })
            }
            LockAcq { lock } => {
                self.stats.crashes.degraded_lock_grants += 1;
                Some(LockGrant { lock })
            }
            BarrierArrive { bar } => {
                self.stats.crashes.degraded_barrier_releases += 1;
                Some(BarrierRelease { bar })
            }
            _ => None,
        };
        match reply {
            Some(kind) => self.forge_reply(now, src, kind),
            None => self.stats.crashes.suppressed_sends += 1,
        }
    }

    /// True when at least one node has crashed so far. Public so harnesses
    /// (the checker's terminal oracle, soak sweeps) can tell degraded runs
    /// from clean ones.
    pub fn crash_occurred(&self) -> bool {
        self.crash.as_deref().is_some_and(|c| !c.crashed.is_empty())
    }

    /// How many processors this run can still expect to finish: the full
    /// count minus every node that crashed before finishing.
    #[inline]
    pub(crate) fn live_finish_target(&self) -> usize {
        match self.crash.as_deref() {
            Some(c) => self.cfg.num_procs - c.crashed_unfinished,
            None => self.cfg.num_procs,
        }
    }

    /// How many arrivals barrier home `h` waits for before releasing: the
    /// full count minus every node `h` has declared dead.
    #[inline]
    pub(crate) fn barrier_expected(&self, h: NodeId) -> usize {
        match self.crash.as_deref() {
            Some(c) => self.cfg.num_procs - c.suspected[h].count_ones() as usize,
            None => self.cfg.num_procs,
        }
    }

    /// Crash-aware stall classification for watchdog diagnoses: a live node
    /// suspected dead is a false-positive detection; a wedge with a real
    /// crash on record means recovery did not restore progress.
    pub(crate) fn classify_crash(&self) -> Option<StallReason> {
        let c = self.crash.as_deref()?;
        let n = self.cfg.num_procs;
        for node in 0..n {
            if c.crashed.contains(node) {
                continue;
            }
            let accuser = (0..n)
                .find(|&o| o != node && !c.crashed.contains(o) && c.suspected[o].contains(node));
            if let Some(by) = accuser {
                return Some(StallReason::DeadNodeSuspected { node, by });
            }
        }
        c.crashed
            .first()
            .map(|node| StallReason::RecoveryStalled { node })
    }

    /// One-line crash-state summary for machine dumps (empty when no plan
    /// is armed or nothing has happened yet).
    pub(crate) fn dump_crash(&self, s: &mut String) {
        use std::fmt::Write;
        let Some(c) = self.crash.as_deref() else { return };
        let any_suspicion = c.suspected.iter().any(|m| !m.is_empty());
        if c.crashed.is_empty() && !any_suspicion {
            return;
        }
        let _ = writeln!(
            s,
            "  crash: crashed={:b} unfinished={} {:?}",
            c.crashed, c.crashed_unfinished, self.stats.crashes.as_words(),
        );
        for (o, m) in c.suspected.iter().enumerate() {
            if !m.is_empty() {
                let _ = writeln!(s, "    P{o} suspects {m:b}");
            }
        }
    }
}

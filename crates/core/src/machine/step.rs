//! Processor front end: batched operation issue, the write-buffer pump,
//! write retirement, and line installation / eviction side effects.

use super::{Event, Machine};
use crate::msg::MsgKind;
use crate::node::{PendingSync, ProcStatus};
use lrc_mem::{CbPush, Eviction, LineState, WbPush};
use lrc_sim::{Cycle, LineAddr, Op, ProcId, Protocol, StallKind};

impl Machine {
    /// Let processor `p` issue operations starting at time `t`, until it
    /// blocks or exhausts the skew quantum.
    pub(crate) fn proc_step(&mut self, p: ProcId, t: Cycle) {
        self.nodes[p].step_scheduled = false;
        if self.nodes[p].status != ProcStatus::Running {
            return;
        }
        let mut now = t;
        let deadline = t + self.cfg.skew_quantum;
        loop {
            let op = match self.nodes[p].deferred_op.take() {
                Some(op) => op,
                None => {
                    // The machine's only `next_op` call site: the per-proc
                    // consumption count is what checkpoints store instead of
                    // workload internals (restore replays it against a fresh
                    // instance).
                    self.ops_consumed[p] += 1;
                    self.workload.next_op(p)
                }
            };
            match op {
                Op::Compute(c) => {
                    self.stats.procs[p].breakdown.add(StallKind::Cpu, u64::from(c));
                    now += u64::from(c);
                }
                Op::Read(a) => {
                    if !self.issue_read(p, now, a) {
                        return; // blocked on a read miss
                    }
                    self.stats.procs[p].breakdown.add(StallKind::Cpu, 1);
                    now += 1;
                }
                Op::Write(a) => match self.issue_write(p, now, a) {
                    WriteIssue::Issued => {
                        self.stats.procs[p].breakdown.add(StallKind::Cpu, 1);
                        now += 1;
                    }
                    WriteIssue::BlockedRetry => {
                        // Write-buffer full: re-issue this op on resume.
                        self.nodes[p].deferred_op = Some(op);
                        return;
                    }
                    WriteIssue::BlockedDone => {
                        // SC blocking write: the transaction itself commits
                        // the store; nothing to re-issue.
                        return;
                    }
                },
                Op::Acquire(l) => {
                    self.begin_acquire(p, now, l);
                    return;
                }
                Op::Release(l) => {
                    if let Some(resumed) = self.begin_release(p, now, PendingSync::LockRelease(l)) {
                        now = resumed;
                    } else {
                        return;
                    }
                }
                Op::Barrier(b) => {
                    // A barrier never completes synchronously: even when the
                    // fence is already clear the arrival round-trip remains.
                    let done = self.begin_release(p, now, PendingSync::Barrier(b));
                    debug_assert!(done.is_none());
                    return;
                }
                Op::Fence => {
                    now = self.do_fence(p, now);
                }
                Op::Done => {
                    self.nodes[p].status = ProcStatus::Finished;
                    self.stats.procs[p].finish_time = now;
                    self.finished += 1;
                    return;
                }
            }
            if now >= deadline {
                self.schedule_step(p, now);
                return;
            }
        }
    }

    /// Issue a read. Returns false (and blocks the processor) on a miss.
    fn issue_read(&mut self, p: ProcId, now: Cycle, a: u64) -> bool {
        self.stats.procs[p].reads += 1;
        self.stats.procs[p].refs += 1;
        self.note_race_read(p, a);
        let line = self.line_of(a);
        let hit = {
            let n = &mut self.nodes[p];
            // Read bypass on a cache miss: forwarding from the write buffer
            // (and, under the lazy protocols, the coalescing buffer).
            n.cache.touch_hit(line) || n.wb.matches(line) || n.cb.contains(line)
        };
        if hit {
            return true;
        }
        self.stats.procs[p].read_misses += 1;
        let word = self.word_of(a);
        self.classify(p, line, word, false);
        let home = self.home_of_touch(line, p);
        let o = self.nodes[p].outstanding.entry(line.0).or_default();
        o.waiting_data = true;
        o.resume_proc = true;
        self.send(now, p, home, MsgKind::ReadReq { line });
        self.block(p, now, StallKind::Read, ProcStatus::StalledRead(line));
        false
    }

    /// Issue a write. Under SC this may block the processor; under the
    /// relaxed protocols it may block on a full write buffer.
    fn issue_write(&mut self, p: ProcId, now: Cycle, a: u64) -> WriteIssue {
        let line = self.line_of(a);
        let word = self.word_of(a);

        if self.protocol == Protocol::Sc {
            self.stats.procs[p].writes += 1;
            self.stats.procs[p].refs += 1;
            if let Some(c) = self.classifier.as_mut() {
                c.record_write(p, line, word);
            }
            self.note_write(p, line, word);
            self.note_race_write(p, a);
            // Single-probe hit check: a read-write hit is touched and
            // dirtied in place; any other state starts a transaction.
            let st = self.nodes[p].cache.write_probe(line, word);
            if st == LineState::ReadWrite {
                return WriteIssue::Issued;
            }
            // Blocking write transaction.
            let upgrade = st == LineState::ReadOnly;
            if upgrade {
                self.stats.procs[p].upgrades += 1;
            } else {
                self.stats.procs[p].write_misses += 1;
            }
            self.classify(p, line, word, upgrade);
            let home = self.home_of_touch(line, p);
            let o = self.nodes[p].outstanding.entry(line.0).or_default();
            o.waiting_data = true;
            o.resume_proc = true;
            o.apply_words |= 1 << word;
            self.send(now, p, home, MsgKind::WriteReq { line, had_copy: upgrade, words: 0 });
            self.block(p, now, StallKind::Write, ProcStatus::StalledWrite(line));
            return WriteIssue::BlockedDone;
        }

        // Relaxed protocols: writes go through the write buffer.
        if self.nodes[p].wb.is_full() && !self.nodes[p].wb.matches(line) {
            self.block(p, now, StallKind::Write, ProcStatus::StalledWriteFull);
            return WriteIssue::BlockedRetry;
        }
        self.stats.procs[p].writes += 1;
        self.stats.procs[p].refs += 1;
        if let Some(c) = self.classifier.as_mut() {
            c.record_write(p, line, word);
        }
        self.note_write(p, line, word);
        self.note_race_write(p, a);
        let outcome = self.nodes[p].wb.push(line, word);
        debug_assert!(outcome != WbPush::Full);
        self.pump_write_buffer(p, now);
        WriteIssue::Issued
    }

    /// Start coherence actions for buffered writes that have none in flight,
    /// then retire whatever is ready.
    pub(crate) fn pump_write_buffer(&mut self, p: ProcId, now: Cycle) {
        loop {
            let (idx, line, words) = {
                match self.nodes[p].wb.next_unissued_idx() {
                    Some(i) => {
                        let e = self.nodes[p].wb.entry_mut(i);
                        e.issued = true;
                        (i, e.line, e.words)
                    }
                    None => break,
                }
            };
            let word = words.trailing_zeros() as usize;
            let st = self.nodes[p].cache.state(line);
            let home = self.home_of_touch(line, p);
            match (self.protocol, st) {
                // Write hit on a writable line: nothing to do.
                (_, LineState::ReadWrite) => {
                    self.nodes[p].wb.entry_mut(idx).ready = true;
                }
                (Protocol::Sc, _) => unreachable!("SC does not use the write buffer"),

                // Eager RC: request ownership; the entry retires when the
                // grant (and data, on a full miss) arrives. Invalidation
                // acks complete in the background.
                (Protocol::Erc, LineState::ReadOnly) => {
                    self.stats.procs[p].upgrades += 1;
                    self.classify(p, line, word, true);
                    let o = self.nodes[p].outstanding.entry(line.0).or_default();
                    o.waiting_data = true;
                    o.retire_wb = true;
                    self.send(now, p, home, MsgKind::WriteReq { line, had_copy: true, words: 0 });
                }
                (Protocol::Erc, LineState::Invalid) => {
                    self.stats.procs[p].write_misses += 1;
                    self.classify(p, line, word, false);
                    let o = self.nodes[p].outstanding.entry(line.0).or_default();
                    o.waiting_data = true;
                    o.retire_wb = true;
                    self.send(now, p, home, MsgKind::WriteReq { line, had_copy: false, words: 0 });
                }

                // Lazy RC: announce the write but retire immediately — the
                // paper's key write-after-read optimization (no wait for the
                // home when the line is already cached read-only).
                (Protocol::Lrc, LineState::ReadOnly) => {
                    self.stats.procs[p].upgrades += 1;
                    self.classify(p, line, word, true);
                    self.nodes[p].cache.upgrade(line);
                    let o = self.nodes[p].outstanding.entry(line.0).or_default();
                    o.waiting_data = true; // the WriteReply itself
                    self.nodes[p].wb.entry_mut(idx).ready = true;
                    self.send(now, p, home, MsgKind::WriteReq { line, had_copy: true, words: 0 });
                }
                (Protocol::Lrc, LineState::Invalid) => {
                    self.stats.procs[p].write_misses += 1;
                    self.classify(p, line, word, false);
                    let o = self.nodes[p].outstanding.entry(line.0).or_default();
                    o.waiting_data = true;
                    o.retire_wb = true;
                    self.send(now, p, home, MsgKind::WriteReq { line, had_copy: false, words: 0 });
                }

                // Lazy-ext: defer even the write announcement; only a full
                // miss talks to the home (a plain data fetch).
                (Protocol::LrcExt, LineState::ReadOnly) => {
                    self.stats.procs[p].upgrades += 1;
                    self.classify(p, line, word, true);
                    self.nodes[p].cache.upgrade(line);
                    self.nodes[p].wb.entry_mut(idx).ready = true;
                }
                (Protocol::LrcExt, LineState::Invalid) => {
                    self.stats.procs[p].write_misses += 1;
                    self.classify(p, line, word, false);
                    let o = self.nodes[p].outstanding.entry(line.0).or_default();
                    o.waiting_data = true;
                    o.retire_wb = true;
                    self.send(now, p, home, MsgKind::ReadReq { line });
                }
            }
        }
        self.retire_wb_entries(p, now);
    }

    /// Retire ready write-buffer entries (FIFO), unblocking the processor
    /// and the release fence as appropriate.
    pub(crate) fn retire_wb_entries(&mut self, p: ProcId, now: Cycle) {
        while let Some(front) = self.nodes[p].wb.front() {
            if !front.ready {
                break;
            }
            let line = front.line;
            // A queued-but-granted entry whose line was stolen (forwarded /
            // invalidated) before it reached the head must re-request — the
            // old grant no longer covers a cached copy.
            if !self.nodes[p].cache.contains(line)
                && !self.nodes[p].outstanding.contains_key(&line.0)
            {
                let f = self.nodes[p].wb.front_mut().expect("front exists");
                f.ready = false;
                f.issued = false;
                self.pump_write_buffer(p, now);
                return; // pump re-enters this function once serviced
            }
            let e = self.nodes[p].wb.pop_ready().expect("front is ready");
            self.install_written_line(p, now, e.line, e.words);
        }
        if self.nodes[p].status == ProcStatus::StalledWriteFull && !self.nodes[p].wb.is_full() {
            self.resume(p, now);
        }
        self.try_complete_release(p, now);
    }

    /// Commit a retired write into the cache (and the write-through path
    /// under the lazy protocols).
    pub(crate) fn install_written_line(&mut self, p: ProcId, now: Cycle, line: LineAddr, words: u64) {
        // One probe upgrades + touches + dirties a present line; only a
        // miss pays the full install path.
        if !self.nodes[p].cache.promote_written(line, words) {
            self.install_line(p, now, line, LineState::ReadWrite);
            self.nodes[p].cache.mark_dirty_words(line, words);
        }
        match self.protocol {
            Protocol::Lrc => {
                match self.nodes[p].cb.push_words(line, words) {
                    CbPush::Merged => {}
                    CbPush::Allocated => {
                        self.push_ev(now + self.cfg.cb_flush_delay, p, Event::CbFlush(p, line));
                    }
                    CbPush::Displaced(v) => {
                        self.send_write_through(p, now, v.line, v.words);
                        self.push_ev(now + self.cfg.cb_flush_delay, p, Event::CbFlush(p, line));
                    }
                }
            }
            Protocol::LrcExt => {
                *self.nodes[p].delayed_writes.entry(line.0).or_insert(0) |= words;
            }
            _ => {}
        }
    }

    /// Background coalescing-buffer drain timer.
    pub(crate) fn cb_flush_timer(&mut self, p: ProcId, t: Cycle, line: LineAddr) {
        if let Some(e) = self.nodes[p].cb.take(line) {
            self.send_write_through(p, t, e.line, e.words);
        }
    }

    /// Send one write-through flush to the line's home.
    pub(crate) fn send_write_through(&mut self, p: ProcId, now: Cycle, line: LineAddr, words: u64) {
        self.note_flush(p, line, words);
        self.nodes[p].wt_unacked += 1;
        let home = self.home_of(line);
        self.send(now, p, home, MsgKind::WriteThrough { line, words });
    }

    /// Bring `line` into `p`'s cache with the given permission, processing
    /// any eviction this causes.
    pub(crate) fn install_line(&mut self, p: ProcId, now: Cycle, line: LineAddr, state: LineState) {
        if self.obs.is_some() {
            let name = match state {
                LineState::ReadOnly => "read-only",
                LineState::ReadWrite => "read-write",
                LineState::Invalid => "invalid",
            };
            self.obs_state(now, p, line.0, lrc_trace::StateChange::Install { state: name });
        }
        if let Some(ev) = self.nodes[p].cache.insert(line, state) {
            self.handle_eviction(p, now, ev);
        }
    }

    /// Capacity/conflict eviction side effects: write-backs (eager),
    /// coalescing-buffer flushes and deferred-notice flushes (lazy), and the
    /// home-node notification the lazy directory requires.
    pub(crate) fn handle_eviction(&mut self, p: ProcId, now: Cycle, ev: Eviction) {
        let line = ev.line;
        if let Some(c) = self.classifier.as_mut() {
            c.on_evict(p, line);
        }
        // A dropped line needs no invalidation at the next acquire.
        self.nodes[p].pending_invals.remove(&line.0);
        let home = self.home_of(line);
        let was_writer = ev.state == LineState::ReadWrite;
        match self.protocol {
            Protocol::Sc | Protocol::Erc => {
                if was_writer && ev.dirty_words != 0 {
                    self.note_flush(p, line, ev.dirty_words);
                    self.nodes[p].wbk_unacked += 1;
                    self.send(now, p, home, MsgKind::WriteBack { line, words: ev.dirty_words });
                } else {
                    self.send(now, p, home, MsgKind::EvictNotify { line, was_writer });
                }
            }
            Protocol::Lrc => {
                if let Some(e) = self.nodes[p].cb.take(line) {
                    self.send_write_through(p, now, e.line, e.words);
                }
                self.send(now, p, home, MsgKind::EvictNotify { line, was_writer });
            }
            Protocol::LrcExt => {
                if let Some(words) = self.nodes[p].delayed_writes.remove(&line.0) {
                    // Replacement forces the deferred write notice out now
                    // (this is what bounds the delayed-write table by the
                    // cache size, as the paper notes).
                    self.note_flush(p, line, words);
                    let o = self.nodes[p].outstanding.entry(line.0).or_default();
                    o.waiting_data = true;
                    self.send(now, p, home, MsgKind::WriteReq { line, had_copy: true, words });
                }
                self.send(now, p, home, MsgKind::EvictNotify { line, was_writer });
            }
        }
    }

    /// Record a classified miss if classification is enabled.
    pub(crate) fn classify(&mut self, p: ProcId, line: LineAddr, word: usize, upgrade: bool) {
        if let Some(c) = self.classifier.as_mut() {
            let cl = c.classify_miss(p, line, word, upgrade);
            self.stats.procs[p].miss_classes.record(cl);
        }
    }
}

/// Outcome of trying to issue a write op.
enum WriteIssue {
    /// Committed to the write buffer (or hit); the processor continues.
    Issued,
    /// Write buffer full: block and re-issue the op when space frees.
    BlockedRetry,
    /// SC blocking transaction issued: the completion path commits the
    /// store, so the op must not be re-issued.
    BlockedDone,
}

//! Sharded parallel execution of the simulation (conservative PDES).
//!
//! Nodes are partitioned across worker shards; each shard owns a complete
//! [`Machine`] replica but pops only events belonging to its own nodes.
//! Shards advance in lockstep windows of `W = min_cross_shard_latency`
//! cycles: within a window every event a shard can affect another shard
//! with arrives at least `W` cycles in the future, so shards run without
//! synchronization and exchange timestamped messages at window edges.
//!
//! Determinism is total, not statistical: the event queue orders same-cycle
//! events by a key derived from the scheduling node's private counter
//! ([`Machine::ev_key`]), which makes the event order a pure function of
//! the simulated history — independent of which engine (sequential or
//! sharded, at any thread count) executes it. The golden-fingerprint suite
//! pins this bit-for-bit.

use super::snapshot::{MachineSnapshot, SnapshotError};
use super::{Event, Machine, RunResult};
use crate::msg::Msg;
use lrc_sim::{Cycle, StallDiagnosis, StallReason, Workload};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How nodes map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Contiguous blocks of node ids per shard — neighbors share a shard,
    /// the layout that minimizes cross-shard traffic on the mesh.
    #[default]
    Contiguous,
    /// Round-robin striping — adjacent node ids land on *different* shards,
    /// so essentially all sharing crosses shard boundaries. The adversarial
    /// layout the boundary stress tests use.
    Strided,
}

/// Configuration for a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Worker threads (shards). `<= 1` runs the sequential kernel.
    pub threads: usize,
    /// Node-to-shard assignment.
    pub partition: Partition,
}

impl ParallelOptions {
    /// `threads` workers with the default contiguous partition.
    pub fn threads(threads: usize) -> Self {
        ParallelOptions { threads, partition: Partition::Contiguous }
    }
}

/// A cross-shard message captured at its send site: arrival time and tie
/// key are computed from sender-local state, so the receiving shard can
/// insert it exactly where the sequential kernel would have.
#[derive(Debug, Clone)]
pub(crate) struct OutMsg {
    pub at: Cycle,
    pub key: u64,
    pub msg: Msg,
}

/// Per-replica sharding context (present only during sharded runs).
pub(crate) struct ShardCtx {
    /// This replica's shard id.
    pub id: u32,
    /// Node → shard map, shared by all replicas.
    pub of_node: Arc<Vec<u32>>,
    /// Cross-shard sends accumulated during the current window.
    pub outbox: Vec<OutMsg>,
}

impl Machine {
    /// Install `workload` and the sharding context, seeding `ProcStep`s for
    /// the shard's own nodes only. The per-node key counters make the seed
    /// keys identical to the sequential kernel's.
    fn prepare_shard(&mut self, workload: Box<dyn Workload>, ctx: Box<ShardCtx>) {
        assert_eq!(
            workload.num_procs(),
            self.cfg.num_procs,
            "workload built for a different processor count"
        );
        self.workload = workload;
        for p in 0..self.cfg.num_procs {
            if ctx.of_node[p] == ctx.id {
                self.nodes[p].step_scheduled = true;
                self.push_ev(0, p, Event::ProcStep(p));
            }
        }
        self.shard = Some(ctx);
    }

    /// Pop and dispatch every pending event strictly before `limit`,
    /// counting handled events into `self.handled` (a machine field, so a
    /// shard restored from a checkpoint continues the count exactly).
    fn run_window(&mut self, limit: Cycle) {
        while self.queue.peek_time().is_some_and(|t| t < limit) {
            let (t, ev) = self.queue.pop().expect("peeked above");
            self.dispatch(t, ev);
            self.handled += 1;
        }
    }

    /// Insert a batch of cross-shard arrivals. Order within the batch is
    /// irrelevant: the queue's (time, key) order is insertion-independent.
    fn ingest(&mut self, batch: &mut Vec<OutMsg>) {
        for m in batch.drain(..) {
            self.queue.push(m.at, m.key, Event::Msg(m.msg));
        }
    }

    /// This shard's next relevant time: the earlier of the local event
    /// queue and any cross-shard send still waiting in the outbox.
    fn local_bound(&self) -> Cycle {
        let q = self.queue.peek_time().unwrap_or(Cycle::MAX);
        let ob = self
            .shard
            .as_deref()
            .and_then(|s| s.outbox.iter().map(|o| o.at).min())
            .unwrap_or(Cycle::MAX);
        q.min(ob)
    }

    /// Can this configuration run sharded and still promise bit-identical
    /// results? Everything that inspects global order mid-run (tracing,
    /// sampling, value/race tracking), mutates cross-node timing state
    /// (link layer, finite NI queues), or assigns homes dynamically
    /// (first-touch) falls back to the sequential kernel — which is always
    /// correct, just single-threaded.
    fn parallel_eligible(&self) -> bool {
        self.xmit.is_none()
            && self.crash.is_none()
            && !self.ni_limited
            && self.cfg.placement != lrc_sim::Placement::FirstTouch
            && self.classifier.is_none()
            && self.values.is_none()
            && self.race.is_none()
            && self.obs.is_none()
            && self.trace_line.is_none()
            && self.nack_nth.is_none()
            && self.check_every == 0
            && self.min_window() >= 1
    }

    /// Conservative lookahead: the minimum cycles between a cross-node send
    /// and its delivery, from the mesh's single-hop latency and the
    /// smallest message's wire occupancy.
    fn min_window(&self) -> Cycle {
        self.net.min_cross_latency(self.cfg.ctrl_msg_bytes)
    }
}

/// A sense-reversing spin barrier for the window lockstep. `wait` returns
/// only after all `n` participants arrive; the release of generation `g`
/// happens-before every participant's return from `wait(g)`, which is what
/// makes the unlocked publish/read of shard bounds sound.
struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    gen: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier { n, arrived: AtomicUsize::new(0), gen: AtomicUsize::new(0) }
    }

    fn wait(&self) {
        let gen = self.gen.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.gen.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            // Spin briefly for the common multi-core case, then yield: on an
            // oversubscribed (or single-core) host a pure spin would burn the
            // whole scheduler timeslice that the *laggard* shard needs.
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Outcome of one worker: its final replica, the diagnosis it raised (if
/// it was the one to detect a stall), and the window-edge snapshot it
/// captured (checkpointing runs only).
type WorkerOut = (Machine, Option<StallDiagnosis>, Option<Result<MachineSnapshot, SnapshotError>>);

/// A consistent cut of a sharded run: one snapshot per shard, captured at
/// the same window edge on every shard. At that point every cross-shard
/// channel (outboxes and both parity inboxes) is provably empty, so the
/// per-shard snapshots jointly capture the complete simulation state.
#[derive(Debug)]
pub struct ShardedCheckpoint {
    /// Shard count the checkpoint was taken with (1 = sequential kernel).
    pub threads: usize,
    /// Node-to-shard assignment used by the run.
    pub partition: Partition,
    /// One snapshot per shard, indexed by shard id.
    pub shards: Vec<MachineSnapshot>,
}

/// What a checkpointing run produced: either it finished before reaching
/// the checkpoint cycle, or it paused there with a consistent cut.
#[derive(Debug)]
pub enum ShardedRunOutcome {
    /// The run drained its queues before the checkpoint cycle.
    Completed(Box<RunResult>),
    /// The run paused at the first window edge at or past the checkpoint
    /// cycle.
    Checkpointed(ShardedCheckpoint),
}

/// Error from a checkpointing run or a resume: either the snapshot layer
/// refused (unsupported feature, corrupt input) or the simulation stalled.
#[derive(Debug)]
pub enum SnapshotRunError {
    /// Capturing or restoring a snapshot failed.
    Snapshot(SnapshotError),
    /// The simulation stalled; the diagnosis names the wedged processors.
    Stall(Box<StallDiagnosis>),
}

impl std::fmt::Display for SnapshotRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotRunError::Snapshot(e) => write!(f, "{e}"),
            SnapshotRunError::Stall(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for SnapshotRunError {}

impl From<SnapshotError> for SnapshotRunError {
    fn from(e: SnapshotError) -> Self {
        SnapshotRunError::Snapshot(e)
    }
}

/// Everything the lockstep worker loop shares across shards.
struct ShardShared<'a> {
    barrier: &'a SpinBarrier,
    bounds: &'a [AtomicU64],
    finished: &'a [AtomicU64],
    stop: &'a AtomicBool,
    /// inboxes[dst][src][parity]: double-buffered by window parity so a
    /// shard writing window j+1's batch never touches the slot its peer is
    /// still draining for window j.
    inboxes: &'a [Vec<[Mutex<Vec<OutMsg>>; 2]>],
    of_node: &'a [u32],
    shards: usize,
    num_procs: usize,
    max_cycles: Cycle,
    window: Cycle,
    /// Pause at the first window edge whose consensus bound reaches this
    /// cycle and capture a snapshot (the consistent-cut checkpoint).
    checkpoint_at: Option<Cycle>,
}

/// The per-shard lockstep loop, shared by fresh runs, checkpointing runs,
/// and resumed runs (a resumed replica simply enters with a mid-run queue).
fn shard_worker(me: usize, mut m: Machine, sh: &ShardShared<'_>) -> WorkerOut {
    let mut diag: Option<StallDiagnosis> = None;
    let mut snap: Option<Result<MachineSnapshot, SnapshotError>> = None;
    let mut parity = 0usize;
    loop {
        // Publish this shard's bound and flush the outbox.
        sh.bounds[me].store(m.local_bound(), Ordering::Relaxed);
        sh.finished[me].store(m.finished as u64, Ordering::Relaxed);
        let mut outbox = std::mem::take(&mut m.shard.as_deref_mut().expect("sharded").outbox);
        for o in outbox.drain(..) {
            let d = sh.of_node[o.msg.dst] as usize;
            sh.inboxes[d][me][parity].lock().expect("poisoned inbox").push(o);
        }
        m.shard.as_deref_mut().expect("sharded").outbox = outbox;
        sh.barrier.wait();
        // Consensus read: every shard computes the same global lower bound
        // from the same published values.
        let lb = sh.bounds.iter().map(|b| b.load(Ordering::Relaxed)).min();
        let lb = lb.expect("at least one shard");
        let done: u64 = sh.finished.iter().map(|f| f.load(Ordering::Relaxed)).sum();
        let stopping = sh.stop.load(Ordering::Relaxed);
        // Second barrier: all reads complete before any shard loops around
        // and republishes.
        sh.barrier.wait();
        if stopping {
            break;
        }
        if lb == Cycle::MAX {
            if done != sh.num_procs as u64 {
                diag = Some(m.diagnose(StallReason::Deadlock, m.queue.now()));
            }
            break;
        }
        if lb > sh.max_cycles {
            // Deterministic: every shard sees the same lb and breaks in the
            // same window.
            if me == 0 {
                diag = Some(m.diagnose(StallReason::CycleHorizon(sh.max_cycles), lb));
            }
            break;
        }
        if m.watchdog.is_some() {
            if let Some(d) = m.scan_stalls(lb) {
                // Only the shard owning the wedged node trips; the flag
                // stops the rest at the next window edge.
                diag = Some(d);
                sh.stop.store(true, Ordering::Relaxed);
            }
        }
        // Ingest this window's cross-shard arrivals.
        for from_src in sh.inboxes[me].iter().take(sh.shards) {
            let mut batch =
                std::mem::take(&mut *from_src[parity].lock().expect("poisoned inbox"));
            m.ingest(&mut batch);
        }
        // Consistent cut: every shard sees the same lb, so all break here
        // in the same window. The outbox was flushed above, the current
        // parity's inboxes were just drained, and the other parity's were
        // drained last window — every channel is empty, and the union of
        // the per-shard snapshots is the complete simulation state.
        if sh.checkpoint_at.is_some_and(|at| lb >= at) {
            snap = Some(m.snapshot());
            break;
        }
        m.run_window(lb + sh.window);
        parity ^= 1;
    }
    (m, diag, snap)
}

/// Drive a set of prepared shard replicas to completion (or to the
/// checkpoint cut). Returns the per-shard outcomes, each shard's last
/// published bound, and the wall-clock seconds spent.
fn drive_shards(
    replicas: Vec<Machine>,
    of_node: &Arc<Vec<u32>>,
    num_procs: usize,
    max_cycles: Cycle,
    window: Cycle,
    checkpoint_at: Option<Cycle>,
) -> (Vec<WorkerOut>, Vec<u64>, f64) {
    let shards = replicas.len();
    let barrier = SpinBarrier::new(shards);
    let bounds: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let finished: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);
    let inboxes: Vec<Vec<[Mutex<Vec<OutMsg>>; 2]>> = (0..shards)
        .map(|_| {
            (0..shards)
                .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                .collect()
        })
        .collect();
    let shared = ShardShared {
        barrier: &barrier,
        bounds: &bounds,
        finished: &finished,
        stop: &stop,
        inboxes: &inboxes,
        of_node,
        shards,
        num_procs,
        max_cycles,
        window,
        checkpoint_at,
    };

    let run_started = std::time::Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|sc| {
        let handles: Vec<_> = replicas
            .into_iter()
            .enumerate()
            .map(|(me, m)| {
                let shared = &shared;
                sc.spawn(move || shard_worker(me, m, shared))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });
    let sim_wall_secs = run_started.elapsed().as_secs_f64();
    let bound_vals = bounds.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    (outs, bound_vals, sim_wall_secs)
}

/// Build one prepared replica per shard, each with its own workload copy.
fn make_replicas(
    build: &(dyn Fn() -> Machine + Sync),
    workload: &(dyn Fn() -> Box<dyn Workload> + Sync),
    shards: usize,
    of_node: &Arc<Vec<u32>>,
) -> Vec<Machine> {
    (0..shards)
        .map(|s| {
            let mut m = build();
            m.prepare_shard(
                workload(),
                Box::new(ShardCtx { id: s as u32, of_node: of_node.clone(), outbox: Vec::new() }),
            );
            m
        })
        .collect()
}

/// Run one workload under a sharded parallel engine, falling back to the
/// sequential kernel when `opts.threads <= 1` or the configuration is not
/// shard-eligible (see `Machine::parallel_eligible`). `build` must produce
/// identically-configured machines and `workload` identically-behaving
/// workloads — each worker gets its own instance of both.
///
/// The returned [`RunResult`] is bit-identical to what the sequential
/// kernel produces for the same configuration, except for wall-clock
/// throughput fields (`sim_wall_secs`) and the per-shard queue-depth
/// vector.
pub fn try_run_sharded(
    build: &(dyn Fn() -> Machine + Sync),
    workload: &(dyn Fn() -> Box<dyn Workload> + Sync),
    opts: &ParallelOptions,
) -> Result<RunResult, Box<StallDiagnosis>> {
    let probe = build();
    let shards = opts.threads.min(probe.cfg.num_procs);
    if shards <= 1 || !probe.parallel_eligible() {
        return probe.try_run(workload());
    }
    let window = probe.min_window();
    let num_procs = probe.cfg.num_procs;
    let max_cycles = probe.max_cycles;
    let of_node = Arc::new(partition_map(num_procs, shards, opts.partition));
    drop(probe);

    let replicas = make_replicas(build, workload, shards, &of_node);
    let (outs, bounds, sim_wall_secs) =
        drive_shards(replicas, &of_node, num_procs, max_cycles, window, None);

    if outs.iter().any(|(_, d, _)| d.is_some()) {
        return Err(Box::new(merge_diagnoses(&outs, &bounds)));
    }
    Ok(merge_results(outs, &of_node, sim_wall_secs, window))
}

/// Like [`try_run_sharded`], but pause the run at the first quiescent
/// point at or past `at_cycle` and capture a [`ShardedCheckpoint`] there.
/// Sequential (fallback or `threads <= 1`) runs pause exactly before the
/// first event at or past `at_cycle`; sharded runs pause at the first
/// window edge whose consensus bound reaches it — either way the captured
/// cut, resumed via [`resume_sharded`], replays the uninterrupted run
/// bit-identically. Runs that drain before `at_cycle` complete normally.
pub fn try_run_sharded_until(
    build: &(dyn Fn() -> Machine + Sync),
    workload: &(dyn Fn() -> Box<dyn Workload> + Sync),
    opts: &ParallelOptions,
    at_cycle: Cycle,
) -> Result<ShardedRunOutcome, SnapshotRunError> {
    let probe = build();
    let shards = opts.threads.min(probe.cfg.num_procs);
    if shards <= 1 || !probe.parallel_eligible() {
        let mut m = probe;
        m.start_run(workload());
        let run_started = std::time::Instant::now();
        return match m.run_until(at_cycle) {
            Err(diag) => Err(SnapshotRunError::Stall(diag)),
            Ok(true) => {
                let snap = m.snapshot()?;
                Ok(ShardedRunOutcome::Checkpointed(ShardedCheckpoint {
                    threads: 1,
                    partition: opts.partition,
                    shards: vec![snap],
                }))
            }
            Ok(false) => match m.finish_run(run_started) {
                Ok((result, _)) => Ok(ShardedRunOutcome::Completed(Box::new(result))),
                Err((diag, _)) => Err(SnapshotRunError::Stall(diag)),
            },
        };
    }
    let window = probe.min_window();
    let num_procs = probe.cfg.num_procs;
    let max_cycles = probe.max_cycles;
    let of_node = Arc::new(partition_map(num_procs, shards, opts.partition));
    drop(probe);

    let replicas = make_replicas(build, workload, shards, &of_node);
    let (outs, bounds, sim_wall_secs) =
        drive_shards(replicas, &of_node, num_procs, max_cycles, window, Some(at_cycle));

    if outs.iter().any(|(_, d, _)| d.is_some()) {
        return Err(SnapshotRunError::Stall(Box::new(merge_diagnoses(&outs, &bounds))));
    }
    if outs.iter().any(|(_, _, s)| s.is_some()) {
        let mut snaps = Vec::with_capacity(outs.len());
        for (_, _, s) in outs {
            match s {
                Some(Ok(snap)) => snaps.push(snap),
                Some(Err(e)) => return Err(SnapshotRunError::Snapshot(e)),
                // The cut is a consensus decision — either every shard
                // captures in the same window or none does.
                None => unreachable!("checkpoint cut must be unanimous"),
            }
        }
        return Ok(ShardedRunOutcome::Checkpointed(ShardedCheckpoint {
            threads: shards,
            partition: opts.partition,
            shards: snaps,
        }));
    }
    Ok(ShardedRunOutcome::Completed(Box::new(merge_results(
        outs,
        &of_node,
        sim_wall_secs,
        window,
    ))))
}

/// Resume a [`ShardedCheckpoint`] and drive it to completion. `workload`
/// must construct the same deterministic workload the checkpointed run
/// used (each shard's restore fast-forwards its own copy). The merged
/// [`RunResult`] is bit-identical to the uninterrupted run's, except for
/// `sim_wall_secs` (which covers only the post-restore segment).
pub fn resume_sharded(
    workload: &(dyn Fn() -> Box<dyn Workload> + Sync),
    ckpt: &ShardedCheckpoint,
) -> Result<RunResult, SnapshotRunError> {
    assert_eq!(
        ckpt.threads.max(1),
        ckpt.shards.len(),
        "checkpoint shard count does not match its thread count"
    );
    if ckpt.threads <= 1 {
        let mut m = ckpt.shards[0].restore(workload())?;
        let run_started = std::time::Instant::now();
        if let Err(diag) = m.run_until(Cycle::MAX) {
            return Err(SnapshotRunError::Stall(diag));
        }
        return match m.finish_run(run_started) {
            Ok((result, _)) => Ok(result),
            Err((diag, _)) => Err(SnapshotRunError::Stall(diag)),
        };
    }
    let shards = ckpt.threads;
    let mut replicas: Vec<Machine> = Vec::with_capacity(shards);
    let mut of_node: Option<Arc<Vec<u32>>> = None;
    for (s, snap) in ckpt.shards.iter().enumerate() {
        let mut m = snap.restore(workload())?;
        let of = of_node
            .get_or_insert_with(|| {
                Arc::new(partition_map(m.cfg.num_procs, shards, ckpt.partition))
            })
            .clone();
        // Reattach the sharding context without re-seeding ProcSteps — the
        // restored queue already holds every pending event, and the cut
        // guarantees the outbox was empty.
        m.shard = Some(Box::new(ShardCtx { id: s as u32, of_node: of, outbox: Vec::new() }));
        replicas.push(m);
    }
    let of_node = of_node.expect("at least one shard");
    let num_procs = replicas[0].cfg.num_procs;
    let max_cycles = replicas[0].max_cycles;
    let window = replicas[0].min_window();

    let (outs, bounds, sim_wall_secs) =
        drive_shards(replicas, &of_node, num_procs, max_cycles, window, None);

    if outs.iter().any(|(_, d, _)| d.is_some()) {
        return Err(SnapshotRunError::Stall(Box::new(merge_diagnoses(&outs, &bounds))));
    }
    Ok(merge_results(outs, &of_node, sim_wall_secs, window))
}

/// Node → shard assignment for `n` nodes over `shards` shards.
fn partition_map(n: usize, shards: usize, p: Partition) -> Vec<u32> {
    match p {
        Partition::Contiguous => {
            let chunk = n.div_ceil(shards);
            (0..n).map(|i| (i / chunk) as u32).collect()
        }
        Partition::Strided => (0..n).map(|i| (i % shards) as u32).collect(),
    }
}

/// Fold per-shard replicas into the single result the sequential kernel
/// would have produced.
fn merge_results(
    outs: Vec<WorkerOut>,
    of_node: &[u32],
    sim_wall_secs: f64,
    _window: Cycle,
) -> RunResult {
    let mut outs = outs;
    let shard_peaks: Vec<usize> = outs.iter().map(|(m, _, _)| m.queue.peak_len()).collect();
    let events: u64 = outs.iter().map(|(m, _, _)| m.handled).sum();
    let (mut base, _, _) = outs.remove(0);
    base.finalize_own_stats(of_node);
    let mut stats = base.stats.clone();
    for (mut m, _, _) in outs {
        m.finalize_own_stats(of_node);
        stats.merge_shard(&m.stats);
    }
    stats.total_cycles = stats.procs.iter().map(|p| p.finish_time).max().unwrap_or(0);
    RunResult {
        protocol: base.protocol,
        workload: base.workload.name().to_string(),
        stats,
        events,
        peak_queue_depth: shard_peaks.iter().copied().max().unwrap_or(0),
        peak_queue_depths: shard_peaks,
        sim_wall_secs,
        ni_peak_ingress: 0,
        ni_peak_egress: 0,
    }
}

/// Combine per-shard stall diagnoses into one report: the triggering
/// shard's reason, the union of stalled (owned) processors, summed gauges,
/// and every shard's local clock so a wedged shard is visible at a glance.
fn merge_diagnoses(outs: &[WorkerOut], bounds: &[u64]) -> StallDiagnosis {
    let primary = outs
        .iter()
        .filter_map(|(_, d, _)| d.as_ref())
        .next()
        .expect("caller checked a diagnosis exists");
    let mut merged = primary.clone();
    merged.stalled.clear();
    merged.finished = 0;
    merged.pending_fences = 0;
    merged.pending_events = 0;
    for (m, d, _) in outs {
        if let Some(d) = d {
            merged.stalled.extend(d.stalled.iter().cloned());
        } else {
            // Shards that stopped on the flag still contribute their own
            // stalled owned nodes (status of non-owned replicas never
            // leaves Running, so there is no double count).
            let d = m.diagnose(StallReason::Deadlock, m.queue.now());
            merged.stalled.extend(d.stalled.iter().cloned());
        }
        merged.finished += m.finished;
        merged.pending_events += m.queue.len();
        merged.pending_fences += m
            .nodes
            .iter()
            .filter(|n| matches!(n.status, crate::node::ProcStatus::Releasing(_)))
            .count();
    }
    merged.stalled.sort_by_key(|s| s.proc);
    merged.stalled.dedup_by_key(|s| s.proc);
    merged.shard_clocks = bounds.to_vec();
    merged
}

impl Machine {
    /// Per-shard end-of-run bookkeeping mirroring the sequential kernel's:
    /// busy-cycle and finish-time attribution for *owned* nodes only, so
    /// the cross-shard additive merge never double counts.
    fn finalize_own_stats(&mut self, of_node: &[u32]) {
        let me = self.shard.as_deref().expect("sharded").id;
        for (i, n) in self.nodes.iter().enumerate() {
            if of_node[i] == me {
                self.stats.procs[i].pp_busy = n.pp.busy_cycles();
                self.stats.procs[i].mem_busy = n.mem.busy_cycles();
            }
        }
    }
}

//! Sharded parallel execution of the simulation (conservative PDES).
//!
//! Nodes are partitioned across worker shards; each shard owns a complete
//! [`Machine`] replica but pops only events belonging to its own nodes.
//! Shards advance in lockstep windows of `W = min_cross_shard_latency`
//! cycles: within a window every event a shard can affect another shard
//! with arrives at least `W` cycles in the future, so shards run without
//! synchronization and exchange timestamped messages at window edges.
//!
//! Determinism is total, not statistical: the event queue orders same-cycle
//! events by a key derived from the scheduling node's private counter
//! ([`Machine::ev_key`]), which makes the event order a pure function of
//! the simulated history — independent of which engine (sequential or
//! sharded, at any thread count) executes it. The golden-fingerprint suite
//! pins this bit-for-bit.

use super::{Event, Machine, RunResult};
use crate::msg::Msg;
use lrc_sim::{Cycle, StallDiagnosis, StallReason, Workload};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How nodes map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Contiguous blocks of node ids per shard — neighbors share a shard,
    /// the layout that minimizes cross-shard traffic on the mesh.
    #[default]
    Contiguous,
    /// Round-robin striping — adjacent node ids land on *different* shards,
    /// so essentially all sharing crosses shard boundaries. The adversarial
    /// layout the boundary stress tests use.
    Strided,
}

/// Configuration for a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Worker threads (shards). `<= 1` runs the sequential kernel.
    pub threads: usize,
    /// Node-to-shard assignment.
    pub partition: Partition,
}

impl ParallelOptions {
    /// `threads` workers with the default contiguous partition.
    pub fn threads(threads: usize) -> Self {
        ParallelOptions { threads, partition: Partition::Contiguous }
    }
}

/// A cross-shard message captured at its send site: arrival time and tie
/// key are computed from sender-local state, so the receiving shard can
/// insert it exactly where the sequential kernel would have.
#[derive(Debug, Clone)]
pub(crate) struct OutMsg {
    pub at: Cycle,
    pub key: u64,
    pub msg: Msg,
}

/// Per-replica sharding context (present only during sharded runs).
pub(crate) struct ShardCtx {
    /// This replica's shard id.
    pub id: u32,
    /// Node → shard map, shared by all replicas.
    pub of_node: Arc<Vec<u32>>,
    /// Cross-shard sends accumulated during the current window.
    pub outbox: Vec<OutMsg>,
}

impl Machine {
    /// Install `workload` and the sharding context, seeding `ProcStep`s for
    /// the shard's own nodes only. The per-node key counters make the seed
    /// keys identical to the sequential kernel's.
    fn prepare_shard(&mut self, workload: Box<dyn Workload>, ctx: Box<ShardCtx>) {
        assert_eq!(
            workload.num_procs(),
            self.cfg.num_procs,
            "workload built for a different processor count"
        );
        self.workload = workload;
        for p in 0..self.cfg.num_procs {
            if ctx.of_node[p] == ctx.id {
                self.nodes[p].step_scheduled = true;
                self.push_ev(0, p, Event::ProcStep(p));
            }
        }
        self.shard = Some(ctx);
    }

    /// Pop and dispatch every pending event strictly before `limit`,
    /// counting handled events into `handled`.
    fn run_window(&mut self, limit: Cycle, handled: &mut u64) {
        while self.queue.peek_time().is_some_and(|t| t < limit) {
            let (t, ev) = self.queue.pop().expect("peeked above");
            self.dispatch(t, ev);
            *handled += 1;
        }
    }

    /// Insert a batch of cross-shard arrivals. Order within the batch is
    /// irrelevant: the queue's (time, key) order is insertion-independent.
    fn ingest(&mut self, batch: &mut Vec<OutMsg>) {
        for m in batch.drain(..) {
            self.queue.push(m.at, m.key, Event::Msg(m.msg));
        }
    }

    /// This shard's next relevant time: the earlier of the local event
    /// queue and any cross-shard send still waiting in the outbox.
    fn local_bound(&self) -> Cycle {
        let q = self.queue.peek_time().unwrap_or(Cycle::MAX);
        let ob = self
            .shard
            .as_deref()
            .and_then(|s| s.outbox.iter().map(|o| o.at).min())
            .unwrap_or(Cycle::MAX);
        q.min(ob)
    }

    /// Can this configuration run sharded and still promise bit-identical
    /// results? Everything that inspects global order mid-run (tracing,
    /// sampling, value/race tracking), mutates cross-node timing state
    /// (link layer, finite NI queues), or assigns homes dynamically
    /// (first-touch) falls back to the sequential kernel — which is always
    /// correct, just single-threaded.
    fn parallel_eligible(&self) -> bool {
        self.xmit.is_none()
            && !self.ni_limited
            && self.cfg.placement != lrc_sim::Placement::FirstTouch
            && self.classifier.is_none()
            && self.values.is_none()
            && self.race.is_none()
            && self.obs.is_none()
            && self.trace_line.is_none()
            && self.nack_nth.is_none()
            && self.check_every == 0
            && self.min_window() >= 1
    }

    /// Conservative lookahead: the minimum cycles between a cross-node send
    /// and its delivery, from the mesh's single-hop latency and the
    /// smallest message's wire occupancy.
    fn min_window(&self) -> Cycle {
        self.net.min_cross_latency(self.cfg.ctrl_msg_bytes)
    }
}

/// A sense-reversing spin barrier for the window lockstep. `wait` returns
/// only after all `n` participants arrive; the release of generation `g`
/// happens-before every participant's return from `wait(g)`, which is what
/// makes the unlocked publish/read of shard bounds sound.
struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    gen: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier { n, arrived: AtomicUsize::new(0), gen: AtomicUsize::new(0) }
    }

    fn wait(&self) {
        let gen = self.gen.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.gen.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            // Spin briefly for the common multi-core case, then yield: on an
            // oversubscribed (or single-core) host a pure spin would burn the
            // whole scheduler timeslice that the *laggard* shard needs.
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Outcome of one worker: its final replica, events handled, and the
/// diagnosis it raised (if it was the one to detect a stall).
type WorkerOut = (Machine, u64, Option<StallDiagnosis>);

/// Run one workload under a sharded parallel engine, falling back to the
/// sequential kernel when `opts.threads <= 1` or the configuration is not
/// shard-eligible (see `Machine::parallel_eligible`). `build` must produce
/// identically-configured machines and `workload` identically-behaving
/// workloads — each worker gets its own instance of both.
///
/// The returned [`RunResult`] is bit-identical to what the sequential
/// kernel produces for the same configuration, except for wall-clock
/// throughput fields (`sim_wall_secs`) and the per-shard queue-depth
/// vector.
pub fn try_run_sharded(
    build: &(dyn Fn() -> Machine + Sync),
    workload: &(dyn Fn() -> Box<dyn Workload> + Sync),
    opts: &ParallelOptions,
) -> Result<RunResult, Box<StallDiagnosis>> {
    let probe = build();
    let shards = opts.threads.min(probe.cfg.num_procs);
    if shards <= 1 || !probe.parallel_eligible() {
        return probe.try_run(workload());
    }
    let window = probe.min_window();
    let num_procs = probe.cfg.num_procs;
    let max_cycles = probe.max_cycles;
    let of_node = Arc::new(partition_map(num_procs, shards, opts.partition));
    drop(probe);

    let mut replicas: Vec<Machine> = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut m = build();
        m.prepare_shard(
            workload(),
            Box::new(ShardCtx { id: s as u32, of_node: of_node.clone(), outbox: Vec::new() }),
        );
        replicas.push(m);
    }

    let barrier = SpinBarrier::new(shards);
    let bounds: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let finished: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);
    // inboxes[dst][src][parity]: double-buffered by window parity so a
    // shard writing window j+1's batch never touches the slot its peer is
    // still draining for window j.
    let inboxes: Vec<Vec<[Mutex<Vec<OutMsg>>; 2]>> = (0..shards)
        .map(|_| {
            (0..shards)
                .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                .collect()
        })
        .collect();

    let run_started = std::time::Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|sc| {
        let handles: Vec<_> = replicas
            .into_iter()
            .enumerate()
            .map(|(me, mut m)| {
                let (barrier, bounds, finished, stop, inboxes, of_node) =
                    (&barrier, &bounds, &finished, &stop, &inboxes, &of_node);
                sc.spawn(move || -> WorkerOut {
                    let mut handled = 0u64;
                    let mut diag: Option<StallDiagnosis> = None;
                    let mut parity = 0usize;
                    loop {
                        // Publish this shard's bound and flush the outbox.
                        bounds[me].store(m.local_bound(), Ordering::Relaxed);
                        finished[me].store(m.finished as u64, Ordering::Relaxed);
                        let mut outbox =
                            std::mem::take(&mut m.shard.as_deref_mut().expect("sharded").outbox);
                        for o in outbox.drain(..) {
                            let d = of_node[o.msg.dst] as usize;
                            inboxes[d][me][parity].lock().expect("poisoned inbox").push(o);
                        }
                        m.shard.as_deref_mut().expect("sharded").outbox = outbox;
                        barrier.wait();
                        // Consensus read: every shard computes the same
                        // global lower bound from the same published values.
                        let lb = bounds.iter().map(|b| b.load(Ordering::Relaxed)).min();
                        let lb = lb.expect("at least one shard");
                        let done: u64 = finished.iter().map(|f| f.load(Ordering::Relaxed)).sum();
                        let stopping = stop.load(Ordering::Relaxed);
                        // Second barrier: all reads complete before any
                        // shard loops around and republishes.
                        barrier.wait();
                        if stopping {
                            break;
                        }
                        if lb == Cycle::MAX {
                            if done != num_procs as u64 {
                                diag =
                                    Some(m.diagnose(StallReason::Deadlock, m.queue.now()));
                            }
                            break;
                        }
                        if lb > max_cycles {
                            // Deterministic: every shard sees the same lb
                            // and breaks in the same window.
                            if me == 0 {
                                diag = Some(
                                    m.diagnose(StallReason::CycleHorizon(max_cycles), lb),
                                );
                            }
                            break;
                        }
                        if m.watchdog.is_some() {
                            if let Some(d) = m.scan_stalls(lb) {
                                // Only the shard owning the wedged node
                                // trips; the flag stops the rest at the
                                // next window edge.
                                diag = Some(d);
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                        // Ingest this window's cross-shard arrivals and run.
                        for from_src in inboxes[me].iter().take(shards) {
                            let mut batch = std::mem::take(
                                &mut *from_src[parity].lock().expect("poisoned inbox"),
                            );
                            m.ingest(&mut batch);
                        }
                        m.run_window(lb + window, &mut handled);
                        parity ^= 1;
                    }
                    (m, handled, diag)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });
    let sim_wall_secs = run_started.elapsed().as_secs_f64();

    let diags: Vec<&StallDiagnosis> = outs.iter().filter_map(|(_, _, d)| d.as_ref()).collect();
    if !diags.is_empty() {
        return Err(Box::new(merge_diagnoses(&outs, &bounds)));
    }
    Ok(merge_results(outs, &of_node, sim_wall_secs, window))
}

/// Node → shard assignment for `n` nodes over `shards` shards.
fn partition_map(n: usize, shards: usize, p: Partition) -> Vec<u32> {
    match p {
        Partition::Contiguous => {
            let chunk = n.div_ceil(shards);
            (0..n).map(|i| (i / chunk) as u32).collect()
        }
        Partition::Strided => (0..n).map(|i| (i % shards) as u32).collect(),
    }
}

/// Fold per-shard replicas into the single result the sequential kernel
/// would have produced.
fn merge_results(
    outs: Vec<WorkerOut>,
    of_node: &[u32],
    sim_wall_secs: f64,
    _window: Cycle,
) -> RunResult {
    let mut outs = outs;
    let shard_peaks: Vec<usize> = outs.iter().map(|(m, _, _)| m.queue.peak_len()).collect();
    let events: u64 = outs.iter().map(|(_, h, _)| *h).sum();
    let (mut base, _, _) = outs.remove(0);
    base.finalize_own_stats(of_node);
    let mut stats = base.stats.clone();
    for (mut m, _, _) in outs {
        m.finalize_own_stats(of_node);
        stats.merge_shard(&m.stats);
    }
    stats.total_cycles = stats.procs.iter().map(|p| p.finish_time).max().unwrap_or(0);
    RunResult {
        protocol: base.protocol,
        workload: base.workload.name().to_string(),
        stats,
        events,
        peak_queue_depth: shard_peaks.iter().copied().max().unwrap_or(0),
        peak_queue_depths: shard_peaks,
        sim_wall_secs,
        ni_peak_ingress: 0,
        ni_peak_egress: 0,
    }
}

/// Combine per-shard stall diagnoses into one report: the triggering
/// shard's reason, the union of stalled (owned) processors, summed gauges,
/// and every shard's local clock so a wedged shard is visible at a glance.
fn merge_diagnoses(outs: &[WorkerOut], bounds: &[AtomicU64]) -> StallDiagnosis {
    let primary = outs
        .iter()
        .filter_map(|(_, _, d)| d.as_ref())
        .next()
        .expect("caller checked a diagnosis exists");
    let mut merged = primary.clone();
    merged.stalled.clear();
    merged.finished = 0;
    merged.pending_fences = 0;
    merged.pending_events = 0;
    for (m, _, d) in outs {
        if let Some(d) = d {
            merged.stalled.extend(d.stalled.iter().cloned());
        } else {
            // Shards that stopped on the flag still contribute their own
            // stalled owned nodes (status of non-owned replicas never
            // leaves Running, so there is no double count).
            let d = m.diagnose(StallReason::Deadlock, m.queue.now());
            merged.stalled.extend(d.stalled.iter().cloned());
        }
        merged.finished += m.finished;
        merged.pending_events += m.queue.len();
        merged.pending_fences += m
            .nodes
            .iter()
            .filter(|n| matches!(n.status, crate::node::ProcStatus::Releasing(_)))
            .count();
    }
    merged.stalled.sort_by_key(|s| s.proc);
    merged.stalled.dedup_by_key(|s| s.proc);
    merged.shard_clocks = bounds.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    merged
}

impl Machine {
    /// Per-shard end-of-run bookkeeping mirroring the sequential kernel's:
    /// busy-cycle and finish-time attribution for *owned* nodes only, so
    /// the cross-shard additive merge never double counts.
    fn finalize_own_stats(&mut self, of_node: &[u32]) {
        let me = self.shard.as_deref().expect("sharded").id;
        for (i, n) in self.nodes.iter().enumerate() {
            if of_node[i] == me {
                self.stats.procs[i].pp_busy = n.pp.busy_cycles();
                self.stats.procs[i].mem_busy = n.mem.busy_cycles();
            }
        }
    }
}

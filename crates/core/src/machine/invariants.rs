//! Global coherence-invariant checking (test/debug instrumentation).
//!
//! When enabled with [`Machine::with_invariant_checks`], the machine sweeps
//! its entire state every N events and panics with a detailed report on the
//! first violation. The checks encode the correctness conditions of
//! DESIGN.md §5:
//!
//! * directory bookkeeping: `writers ⊆ sharers`, `notified ⊆ sharers`;
//! * **eager single-writer**: under SC/ERC no two caches ever hold the same
//!   line writable, and a writable copy excludes all other copies (modulo
//!   transactions currently in flight for that line, which are skipped);
//! * **directory soundness**: a cached line's holder appears in the home's
//!   sharer set (again modulo in-flight transactions and, for the lazy
//!   protocols, copies whose invalidation is pending at an acquire);
//! * cache geometry: no set exceeds its associativity (checked structurally
//!   by `lrc-mem`, re-asserted here end-to-end).
//!
//! The sweep is O(machine size) and intended for tests — the protocol test
//! suite runs every scripted scenario and the tiny application suite with
//! checks on.

use super::Machine;
use crate::node::ProcStatus;
use lrc_mem::LineState;
use lrc_sim::LineAddr;

impl Machine {
    /// Sweep all machine state for coherence-invariant violations.
    ///
    /// `context` is included in the panic message.
    pub(crate) fn check_invariants(&self, context: &str) {
        // Directory structural invariants.
        for (l, e) in &self.dir {
            assert_eq!(
                e.writers() & !e.sharers(),
                0,
                "{context}: line {l}: writers ⊄ sharers\n{}",
                self.dump()
            );
            assert_eq!(
                e.notified() & !e.sharers(),
                0,
                "{context}: line {l}: notified ⊄ sharers\n{}",
                self.dump()
            );
        }

        // Cache-vs-directory soundness. Lines with any transaction in
        // flight — at the holder (outstanding entry) or at the home (ack
        // collection or 3-hop forward in progress, which implies
        // invalidations may still be in transit) — are legitimately in a
        // transient state and skipped.
        for (p, node) in self.nodes.iter().enumerate() {
            for line in node.cache.iter() {
                if node.outstanding.contains_key(&line.line.0) {
                    continue;
                }
                let entry = self.dir.get(&line.line.0);
                if entry.is_some_and(|e| e.pending.is_some() || e.busy) {
                    continue;
                }
                if !self.protocol.is_lazy() {
                    // Eager protocols: every cached copy is directory-known,
                    // and a writable copy is exclusive.
                    let known = entry.is_some_and(|e| e.is_sharer(p));
                    assert!(
                        known,
                        "{context}: P{p} caches line {} ({:?}) unknown to its home (entry {:?})\n{}",
                        line.line.0,
                        line.state,
                        entry,
                        self.dump()
                    );
                    if line.state == LineState::ReadWrite {
                        let holders = self.writable_holders(line.line);
                        assert!(
                            holders.len() <= 1,
                            "{context}: line {} writable at {holders:?} (eager requires exclusivity; entry {:?})\n{}",
                            line.line.0,
                            entry,
                            self.dump()
                        );
                    }
                } else {
                    // Lazy protocols: a cached copy is either known to the
                    // home or queued for acquire-time invalidation (a notice
                    // raced with our refetch), never silently unknown.
                    let known = entry.is_some_and(|e| e.is_sharer(p))
                        || node.pending_invals.contains(&line.line.0);
                    assert!(
                        known,
                        "{context}: P{p} caches line {} unknown to its home (lazy)\n{}",
                        line.line.0,
                        self.dump()
                    );
                }
            }
        }

        // Accounting sanity: finished processors hold no deferred work.
        for (p, node) in self.nodes.iter().enumerate() {
            if node.status == ProcStatus::Finished {
                assert!(
                    node.deferred_op.is_none(),
                    "{context}: finished P{p} still holds a deferred op"
                );
            }
        }
    }

    /// Every processor holding `line` writable.
    fn writable_holders(&self, line: LineAddr) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(p, n)| {
                n.cache.state(line) == LineState::ReadWrite
                    && !n.outstanding.contains_key(&line.0)
                    && {
                        let _ = p;
                        true
                    }
            })
            .map(|(p, _)| p)
            .collect()
    }
}

//! Global coherence-invariant checking (test/debug instrumentation and the
//! model checker's safety oracle).
//!
//! [`Machine::check_violations`] sweeps the entire machine state and returns
//! every violated invariant as a structured [`Violation`] value; the model
//! checker (`lrc-check`) calls it after every explored transition. When
//! enabled with [`Machine::with_invariant_checks`], the machine additionally
//! sweeps every N events during a normal run and panics with a detailed
//! report on the first violation (the historical behavior, preserved for the
//! protocol test suites). The checks encode the correctness conditions of
//! DESIGN.md §5:
//!
//! * directory bookkeeping: `writers ⊆ sharers`, `notified ⊆ sharers`;
//! * **eager single-writer**: under SC/ERC no two caches ever hold the same
//!   line writable, and a writable copy excludes all other copies (modulo
//!   transactions currently in flight for that line, which are skipped);
//! * **directory soundness**: a cached line's holder appears in the home's
//!   sharer set (again modulo in-flight transactions and, for the lazy
//!   protocols, copies whose invalidation is pending at an acquire);
//! * cache geometry: no set exceeds its associativity (checked structurally
//!   by `lrc-mem`, re-asserted here end-to-end).
//!
//! The sweep is O(machine size) and intended for tests — the protocol test
//! suite runs every scripted scenario and the tiny application suite with
//! checks on.

use super::Machine;
use crate::directory::NodeSet;
use crate::node::ProcStatus;
use lrc_mem::LineState;
use lrc_sim::LineAddr;

/// One violated coherence invariant, as found by a full machine sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Directory bookkeeping: a line's writer mask is not a subset of its
    /// sharer mask.
    WritersNotSharers {
        /// The offending line.
        line: u64,
        /// Writer set.
        writers: NodeSet,
        /// Sharer set.
        sharers: NodeSet,
    },
    /// Directory bookkeeping: a line's notified mask is not a subset of its
    /// sharer mask.
    NotifiedNotSharers {
        /// The offending line.
        line: u64,
        /// Notified set.
        notified: NodeSet,
        /// Sharer set.
        sharers: NodeSet,
    },
    /// A processor caches a line its home directory does not record — under
    /// a lazy protocol, not even as a pending acquire-time invalidation.
    UnknownCachedCopy {
        /// The offending line.
        line: u64,
        /// The processor holding the unknown copy.
        proc: usize,
        /// Cache permission of the unknown copy.
        writable: bool,
    },
    /// Under an eager protocol (SC/ERC), more than one processor holds the
    /// line writable at once.
    MultipleWriters {
        /// The offending line.
        line: u64,
        /// Every processor holding the line writable.
        holders: Vec<usize>,
    },
    /// A processor reported finished while still holding a deferred op.
    FinishedWithDeferredOp {
        /// The offending processor.
        proc: usize,
    },
    /// A node's `inval_all` overflow bit is set but its pending-inval set is
    /// non-empty — the collapse must clear the set (the acquire hot path
    /// relies on `inval_all ⇒ pending_invals empty`).
    OverflowResidue {
        /// The offending processor.
        proc: usize,
        /// Entries still in the supposedly-collapsed set.
        pending: usize,
    },
    /// A node's pending-inval set exceeds the configured write-notice
    /// buffer capacity (the bound was not enforced).
    WriteNoticeOverCap {
        /// The offending processor.
        proc: usize,
        /// Entries in the set.
        pending: usize,
        /// The configured capacity.
        cap: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::WritersNotSharers { line, writers, sharers } => write!(
                f,
                "line {line}: writers ⊄ sharers (writers={writers:b}, sharers={sharers:b})"
            ),
            Violation::NotifiedNotSharers { line, notified, sharers } => write!(
                f,
                "line {line}: notified ⊄ sharers (notified={notified:b}, sharers={sharers:b})"
            ),
            Violation::UnknownCachedCopy { line, proc, writable } => write!(
                f,
                "P{proc} caches line {line} ({}) unknown to its home",
                if *writable { "writable" } else { "read-only" }
            ),
            Violation::MultipleWriters { line, holders } => {
                write!(f, "line {line} writable at {holders:?} (eager requires exclusivity)")
            }
            Violation::FinishedWithDeferredOp { proc } => {
                write!(f, "finished P{proc} still holds a deferred op")
            }
            Violation::OverflowResidue { proc, pending } => write!(
                f,
                "P{proc}: inval_all set with {pending} pending inval(s) left uncollapsed"
            ),
            Violation::WriteNoticeOverCap { proc, pending, cap } => {
                write!(f, "P{proc}: {pending} pending inval(s) exceed the {cap}-entry buffer")
            }
        }
    }
}

impl Machine {
    /// Sweep all machine state and return every violated coherence
    /// invariant (empty = the machine is coherent). Non-panicking: this is
    /// the model checker's safety oracle, usable mid-exploration on cloned
    /// machines.
    pub fn check_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();

        // Directory structural invariants.
        for (l, e) in self.dir.iter() {
            if !(e.writers() & !e.sharers()).is_empty() {
                out.push(Violation::WritersNotSharers {
                    line: l,
                    writers: e.writers(),
                    sharers: e.sharers(),
                });
            }
            if !(e.notified() & !e.sharers()).is_empty() {
                out.push(Violation::NotifiedNotSharers {
                    line: l,
                    notified: e.notified(),
                    sharers: e.sharers(),
                });
            }
        }

        // Cache-vs-directory soundness. Lines with any transaction in
        // flight — at the holder (outstanding entry) or at the home (ack
        // collection or 3-hop forward in progress, which implies
        // invalidations may still be in transit) — are legitimately in a
        // transient state and skipped.
        let mut multi_writer_seen: Vec<u64> = Vec::new();
        for (p, node) in self.nodes.iter().enumerate() {
            for line in node.cache.iter() {
                if node.outstanding.contains_key(&line.line.0) {
                    continue;
                }
                let entry = self.dir.get(line.line.0);
                if entry.is_some_and(|e| e.pending.is_some() || e.busy) {
                    continue;
                }
                if !self.protocol.is_lazy() {
                    // Eager protocols: every cached copy is directory-known,
                    // and a writable copy is exclusive.
                    if !entry.is_some_and(|e| e.is_sharer(p)) {
                        out.push(Violation::UnknownCachedCopy {
                            line: line.line.0,
                            proc: p,
                            writable: line.state == LineState::ReadWrite,
                        });
                    }
                    if line.state == LineState::ReadWrite
                        && !multi_writer_seen.contains(&line.line.0)
                    {
                        let holders = self.writable_holders(line.line);
                        if holders.len() > 1 {
                            multi_writer_seen.push(line.line.0);
                            out.push(Violation::MultipleWriters { line: line.line.0, holders });
                        }
                    }
                } else {
                    // Lazy protocols: a cached copy is either known to the
                    // home or queued for acquire-time invalidation (a notice
                    // raced with our refetch), never silently unknown.
                    let known = entry.is_some_and(|e| e.is_sharer(p))
                        || node.pending_invals.contains(&line.line.0)
                        || node.inval_all;
                    if !known {
                        out.push(Violation::UnknownCachedCopy {
                            line: line.line.0,
                            proc: p,
                            writable: line.state == LineState::ReadWrite,
                        });
                    }
                }
            }
        }

        // Accounting sanity: finished processors hold no deferred work.
        for (p, node) in self.nodes.iter().enumerate() {
            if node.status == ProcStatus::Finished && node.deferred_op.is_some() {
                out.push(Violation::FinishedWithDeferredOp { proc: p });
            }
        }

        // Finite write-notice buffers: the overflow collapse must leave the
        // precise set empty, and an enforced cap is never exceeded.
        for (p, node) in self.nodes.iter().enumerate() {
            if node.inval_all && !node.pending_invals.is_empty() {
                out.push(Violation::OverflowResidue { proc: p, pending: node.pending_invals.len() });
            }
            if let Some(cap) = self.cfg.resources.write_notice_buffer {
                if node.pending_invals.len() > cap {
                    out.push(Violation::WriteNoticeOverCap {
                        proc: p,
                        pending: node.pending_invals.len(),
                        cap,
                    });
                }
            }
        }

        out
    }

    /// Sweep all machine state for coherence-invariant violations, panicking
    /// with a detailed report on the first one (the behavior behind
    /// [`Machine::with_invariant_checks`]).
    ///
    /// `context` is included in the panic message.
    pub(crate) fn check_invariants(&self, context: &str) {
        let violations = self.check_violations();
        if let Some(v) = violations.first() {
            panic!(
                "{context}: {} invariant violation(s); first: {v}\n{}",
                violations.len(),
                self.dump()
            );
        }
    }

    /// Every processor holding `line` writable.
    fn writable_holders(&self, line: LineAddr) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.cache.state(line) == LineState::ReadWrite
                    && !n.outstanding.contains_key(&line.0)
            })
            .map(|(p, _)| p)
            .collect()
    }
}

//! The simulated machine: nodes, network, directory, protocol engines, and
//! the event loop.
//!
//! One [`Machine`] instance simulates one run of one workload under one
//! protocol. The implementation is split by concern:
//!
//! * [`step`] — the processor front end: batched op issue, the write buffer
//!   pump, line installation and eviction.
//! * [`home`] — directory-side message handling (the home node's protocol
//!   processor).
//! * [`remote`] — cache-side message handling (invalidations, notices,
//!   forwards, replies).
//! * [`sync_ops`] — acquires, releases, barriers, fences, and the lock and
//!   barrier services.

pub(crate) mod checker;
pub(crate) mod crash;
mod home;
pub(crate) mod invariants;
pub(crate) mod obs;
pub(crate) mod parallel;
pub(crate) mod race;
mod remote;
pub(crate) mod snapshot;
mod step;
mod sync_ops;
pub(crate) mod values;
pub(crate) mod xmit;

pub use invariants::Violation;
pub use parallel::{
    resume_sharded, try_run_sharded, try_run_sharded_until, ParallelOptions, Partition,
    ShardedCheckpoint, ShardedRunOutcome, SnapshotRunError,
};
pub use snapshot::{MachineSnapshot, SnapshotError, MIN_SNAPSHOT_VERSION, SNAPSHOT_VERSION};
pub use values::SymbolicMemory;

use crate::directory::DirEntry;
use crate::msg::{Msg, MsgKind};
use crate::node::{Node, ProcStatus};
use lrc_classify::Classifier;
use lrc_mesh::{FaultPlan, Network};
use lrc_sim::{
    Addr, Cycle, EventQueue, LatencyStats, LineAddr, LineMap, MachineConfig, MachineStats, NodeId,
    ProcId, Protocol, StallDiagnosis, StallKind, StallReason, StalledProc, Workload,
};
use lrc_trace::{
    FlightRecorder, ResourceEv, RingSink, TimeSeries, TraceFilter, TraceRecord, TraceSink,
};
use xmit::{InFlight, XmitState};

/// A deliberately-introduced protocol bug, for validating that the model
/// checker actually catches violations. Never enabled in normal runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the protocol as implemented.
    #[default]
    None,
    /// Eager protocols: on a write to a shared block, grant ownership
    /// immediately *without* invalidating the other copies (and without
    /// starting an ack collection). Stale read-only copies survive unknown
    /// to the directory — a safety violation the checker must find.
    SkipInvalidate,
    /// Lazy protocols: on a weak transition, count the write notices in the
    /// ack collection but never send them. The acks can never arrive, so
    /// the writer's release fence never clears — a liveness violation.
    SkipWriteNotice,
    /// Crash recovery: when a home declares a node dead, skip reclaiming
    /// the locks it held. Survivors queued on those locks wedge — the
    /// recovery liveness violation `lrc-check --crash-nth` must find.
    SkipLockReclaim,
}

/// Events driving the simulation.
#[derive(Debug, Clone, Hash)]
pub(crate) enum Event {
    /// Give processor `p` a chance to issue operations.
    ProcStep(ProcId),
    /// A message has been fully received at its destination.
    Msg(Msg),
    /// Background drain timer for a coalescing-buffer entry.
    CbFlush(ProcId, LineAddr),
    /// Link layer (fault plans only): a framed copy of `msg` with sequence
    /// number `seq` arrived at `msg.dst`, possibly failing its checksum.
    XMsg {
        /// The framed protocol message.
        msg: Msg,
        /// Link-layer sequence number (dedupe / ack key).
        seq: u64,
        /// The receiving NI's checksum check failed for this copy.
        corrupt: bool,
    },
    /// Link layer: a delivery acknowledgement (`ack`) or checksum NACK for
    /// sequence `seq`, arriving back at the original sender.
    LinkCtl {
        /// Sequence number being acknowledged or NACKed.
        seq: u64,
        /// True for an ACK, false for a checksum NACK.
        ack: bool,
    },
    /// Link layer: retransmit timer for in-flight sequence `seq`. Stale
    /// (superseded) and already-acknowledged timers fire as no-ops.
    RetryTimer {
        /// The sequence number the timer guards.
        seq: u64,
    },
    // New variants go *after* the existing ones: the derived `Hash` folds
    // the variant index, and the golden fingerprints depend on existing
    // indices staying put.
    /// Finite NI queues: re-attempt a send that a full queue rejected,
    /// after its backoff.
    NiRetry {
        /// The rejected message.
        msg: Msg,
        /// Attempts so far (drives the next backoff if rejected again).
        attempts: u32,
    },
    /// Finite directory request slots: re-send a request the home
    /// BUSY-NACKed, after its backoff.
    NackRetry {
        /// The reconstructed request.
        msg: Msg,
    },
    /// Metrics sampler tick: snapshot machine gauges into the time series
    /// and re-arm one interval later (only while the run is live).
    Sample,
    /// Crash plans only: periodic heartbeat/lease scan (armed only for
    /// lease-driven detection; re-arms itself while survivors run).
    LeaseTick,
    /// Crash plans only: kill `victim` now (scheduled at `start_run` from
    /// the plan's victim list).
    CrashNode {
        /// The node to kill.
        victim: NodeId,
    },
}

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Protocol simulated.
    pub protocol: Protocol,
    /// Workload name.
    pub workload: String,
    /// All collected statistics.
    pub stats: MachineStats,
    /// Discrete events the kernel handled during the run (simulator
    /// throughput = `events` / wall-clock).
    pub events: u64,
    /// High-water mark of the event queue (simulator working-set gauge).
    /// For sharded runs, the max over shards.
    pub peak_queue_depth: usize,
    /// Per-shard event-queue high-water marks: one entry per worker shard
    /// (a single entry, equal to `peak_queue_depth`, for sequential runs).
    pub peak_queue_depths: Vec<usize>,
    /// Wall-clock seconds spent inside the event loop itself — excludes
    /// workload construction, so it isolates kernel throughput.
    pub sim_wall_secs: f64,
    /// Peak NI ingress-queue occupancy over all nodes (0 when NI limits
    /// are not installed — occupancy is only tracked under finite queues).
    pub ni_peak_ingress: usize,
    /// Peak NI egress-queue occupancy over all nodes (0 when unbounded).
    pub ni_peak_egress: usize,
}

impl RunResult {
    /// Wall-clock of the run in cycles (last processor to finish).
    pub fn total_cycles(&self) -> u64 {
        self.stats.total_cycles
    }
}

/// A configured machine, ready to run one workload.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) protocol: Protocol,
    pub(crate) nodes: Vec<Node>,
    /// Directory entries, `Vec`-indexed by line address (dense by
    /// construction: workload allocators hand out compact address spaces).
    pub(crate) dir: LineMap<DirEntry>,
    /// Requests queued at their home because the directory entry was busy
    /// (3-hop in flight) or collecting acks. Real DASH NAKs these back for
    /// retry; we queue them (stable and livelock-free) and charge one NAK
    /// round trip when releasing, so hot-spot requests still pay the
    /// contention penalty the paper describes.
    pub(crate) parked: LineMap<std::collections::VecDeque<(Msg, Cycle)>>,
    pub(crate) net: Network,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) stats: MachineStats,
    pub(crate) classifier: Option<Classifier>,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) finished: usize,
    pub(crate) max_cycles: u64,
    /// Sweep coherence invariants every N handled events (0 = off).
    pub(crate) check_every: u64,
    /// Debug: eprintln every message concerning this line.
    pub(crate) trace_line: Option<u64>,
    /// Observability: structured trace sink, latency probes, metrics
    /// sampler, and flight recorder. `None` (the default) keeps every
    /// hook to one never-taken branch — the zero-cost-when-off guarantee.
    pub(crate) obs: Option<Box<obs::Obs>>,
    /// First-touch page→home assignments (only under
    /// `Placement::FirstTouch`), `Vec`-indexed by page number.
    pub(crate) page_home: LineMap<NodeId>,
    /// For each line with a 3-hop forward in flight, the episode record.
    /// Used to drop late 3-hop replies and to detect forwards that can
    /// never be served because the owner is itself blocked requesting the
    /// same line.
    pub(crate) busy_info: LineMap<ForwardEp>,
    /// Monotone forward-episode counter.
    pub(crate) forward_seq: u64,
    /// Injected protocol bug (checker validation only).
    pub(crate) fault: Fault,
    /// Link-layer reliable-delivery state. `Some` exactly when the network
    /// carries an active fault plan; `None` costs the send path one branch.
    pub(crate) xmit: Option<Box<XmitState>>,
    /// Per-processor stall horizon: abort with a [`StallDiagnosis`] when any
    /// processor stays continuously stalled this long while the machine
    /// keeps processing events (livelock detector). `None` = off.
    pub(crate) watchdog: Option<Cycle>,
    /// Every lock grant in the order the homes issued them, as
    /// `(lock, grantee)` — the synchronization order fed to the reference
    /// interpreter. Only recorded when value tracking is on.
    pub(crate) grant_log: Vec<(lrc_sim::LockId, NodeId)>,
    /// Symbolic last-writer tracking for the DRF ⇒ SC-equivalence check
    /// (None = off).
    pub(crate) values: Option<values::ValueTracker>,
    /// Online happens-before race detector (`None` = off, the default).
    /// Like `obs` and `values`, every hook is one never-taken branch when
    /// off — the zero-cost-when-off guarantee the golden fingerprints pin.
    pub(crate) race: Option<Box<lrc_race::RaceDetector>>,
    /// Recycled `AckCollection::waiters` vectors: completed collections
    /// return their (cleared) allocation here and new collections reuse it,
    /// so the steady-state ack path allocates nothing.
    pub(crate) waiter_pool: Vec<Vec<NodeId>>,
    /// Scratch buffer reused by `process_pending_invals` (drained and
    /// returned empty each call).
    pub(crate) inval_scratch: Vec<u64>,
    /// BUSY-NACKs sent per line during its current busy episode (finite
    /// directory request slots only; cleared when the episode resolves).
    pub(crate) nacks_given: LineMap<u32>,
    /// Checker choice point: force a BUSY-NACK on the `n`-th park-eligible
    /// request of the run regardless of capacity (`None` in normal runs).
    pub(crate) nack_nth: Option<u64>,
    /// Count of park-eligible requests seen so far (indexes `nack_nth`).
    pub(crate) park_seq: u64,
    /// Cached `cfg.resources` NI-limits flag: the send hot path branches on
    /// this bool instead of re-deriving it per message.
    pub(crate) ni_limited: bool,
    /// NI-rejected sends currently waiting out their backoff.
    pub(crate) pending_ni_retries: u32,
    /// Most recent NI rejection, as `(node, occupancy, cap)` — names the
    /// congested queue in a watchdog diagnosis.
    pub(crate) last_ni_reject: Option<(NodeId, usize, usize)>,
    /// Per-node monotone counters backing the deterministic event tie-break
    /// keys (see [`Machine::ev_key`]). One counter per node keeps the key
    /// sequence a function of that node's protocol history alone — the
    /// property that makes sequential and sharded runs assign identical
    /// keys to identical events.
    pub(crate) ev_seq: Vec<u64>,
    /// Sharded-run context: which shard this replica is, the node→shard
    /// map, and the outbox collecting cross-shard sends for the window
    /// exchange. `None` in sequential runs (the only branch on the send
    /// path costs one never-taken test).
    pub(crate) shard: Option<Box<parallel::ShardCtx>>,
    /// Set as soon as the model checker drives this machine through
    /// [`Machine::step_choice`]: exploration fires pending events in
    /// arbitrary order, so channel-FIFO delivery assumptions no longer hold
    /// (see [`Machine::delivery_reordering_possible`]).
    pub(crate) choice_driven: bool,
    /// Events handled so far by [`Machine::run_until`] (drives the
    /// watchdog/invariant cadence and `RunResult::events`). A field, not a
    /// loop local, so a restored machine continues the count — and with it
    /// the scan cadence — exactly where the checkpoint left off.
    pub(crate) handled: u64,
    /// Ops consumed from the workload per processor (`next_op` calls).
    /// Checkpoints store these counts instead of workload internals: a
    /// restore replays them against a fresh workload instance, which the
    /// determinism contract of [`Workload::next_op`] makes exact.
    pub(crate) ops_consumed: Vec<u64>,
    /// Crash-stop failure subsystem (leases, suspicion, reclamation).
    /// `Some` exactly when the fault plan carries a [`lrc_mesh::CrashPlan`];
    /// `None` keeps every crash hook to one never-taken branch.
    pub(crate) crash: Option<Box<crash::CrashCtx>>,
}

impl Clone for Machine {
    /// Snapshot the whole machine (model-checker state exploration).
    ///
    /// # Panics
    /// If the installed workload does not support [`Workload::fork`].
    fn clone(&self) -> Self {
        Machine {
            cfg: self.cfg.clone(),
            protocol: self.protocol,
            nodes: self.nodes.clone(),
            dir: self.dir.clone(),
            parked: self.parked.clone(),
            net: self.net.clone(),
            queue: self.queue.clone(),
            stats: self.stats.clone(),
            classifier: self.classifier.clone(),
            workload: self.workload.fork().expect("workload does not support fork()"),
            finished: self.finished,
            max_cycles: self.max_cycles,
            check_every: self.check_every,
            trace_line: self.trace_line,
            obs: self.obs.clone(),
            page_home: self.page_home.clone(),
            busy_info: self.busy_info.clone(),
            forward_seq: self.forward_seq,
            fault: self.fault,
            xmit: self.xmit.clone(),
            watchdog: self.watchdog,
            grant_log: self.grant_log.clone(),
            values: self.values.clone(),
            race: self.race.clone(),
            // Pools hold only spare capacity, never state: fresh ones are
            // equivalent and keep snapshots lean.
            waiter_pool: Vec::new(),
            inval_scratch: Vec::new(),
            nacks_given: self.nacks_given.clone(),
            nack_nth: self.nack_nth,
            park_seq: self.park_seq,
            ni_limited: self.ni_limited,
            pending_ni_retries: self.pending_ni_retries,
            last_ni_reject: self.last_ni_reject,
            ev_seq: self.ev_seq.clone(),
            // Snapshots are checker state — always sequential.
            shard: None,
            choice_driven: self.choice_driven,
            handled: self.handled,
            ops_consumed: self.ops_consumed.clone(),
            crash: self.crash.clone(),
        }
    }
}

/// Bookkeeping for one 3-hop forward episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ForwardEp {
    pub id: u64,
    pub owner: NodeId,
    pub requester: NodeId,
    pub for_write: bool,
    /// The owner has already supplied the data (CopyBack in flight).
    pub served: bool,
}

impl Machine {
    /// Build a machine for `cfg` running `protocol`.
    ///
    /// # Panics
    /// If the configuration is invalid or has more than 64 processors (the
    /// directory uses 64-bit sharer masks, like most directories of the
    /// paper's era used limited pointers).
    pub fn new(cfg: MachineConfig, protocol: Protocol) -> Self {
        cfg.validate().expect("invalid machine configuration");
        assert!(
            cfg.num_procs <= crate::directory::NodeSet::CAPACITY,
            "directory sharer sets support ≤ {} processors",
            crate::directory::NodeSet::CAPACITY
        );
        let nodes = (0..cfg.num_procs).map(|_| Node::new(&cfg)).collect();
        let net = Network::new(&cfg);
        let stats = MachineStats::new(cfg.num_procs);
        Machine {
            protocol,
            nodes,
            dir: LineMap::new(),
            parked: LineMap::new(),
            net,
            queue: EventQueue::new(),
            stats,
            classifier: None,
            workload: Box::new(NullWorkload),
            finished: 0,
            max_cycles: u64::MAX / 4,
            check_every: 0,
            trace_line: None,
            obs: None,
            page_home: LineMap::new(),
            busy_info: LineMap::new(),
            forward_seq: 0,
            fault: Fault::None,
            xmit: None,
            watchdog: None,
            grant_log: Vec::new(),
            values: None,
            race: None,
            waiter_pool: Vec::new(),
            inval_scratch: Vec::new(),
            nacks_given: LineMap::new(),
            nack_nth: None,
            park_seq: 0,
            ni_limited: cfg.resources.ni_ingress.is_some() || cfg.resources.ni_egress.is_some(),
            pending_ni_retries: 0,
            last_ni_reject: None,
            ev_seq: vec![0; cfg.num_procs],
            shard: None,
            choice_driven: false,
            handled: 0,
            ops_consumed: vec![0; cfg.num_procs],
            crash: None,
            cfg,
        }
    }

    /// Checker choice point: BUSY-NACK the `n`-th (0-based, across the
    /// whole run) request that would otherwise be parked against a busy
    /// directory entry, regardless of configured capacity. This makes the
    /// NACK/retry path a deterministic branch the model checker can place
    /// anywhere in an interleaving — the bounded-resource analogue of
    /// `FaultPlan::drop_nth`.
    pub fn with_nack_nth(mut self, n: u64) -> Self {
        self.nack_nth = Some(n);
        self
    }

    /// Inject a deliberate protocol bug (see [`Fault`]) — used only to
    /// validate that the model checker catches violations.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = fault;
        self
    }

    /// Install a fault-injection plan on the interconnect and activate the
    /// link-layer reliable-delivery machinery (sequence numbers, ACK/NACK,
    /// retransmit timers with exponential backoff) that recovers from it.
    ///
    /// An inactive plan (all rates zero, no `drop_nth`) installs nothing:
    /// the run stays bit-identical to a machine built without a plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        // The crash plan rides the fault plan but is not a link fault: it
        // arms its own subsystem and must not activate the link layer.
        let crash = plan.crash.clone();
        self.net = self.net.with_faults(plan);
        self.xmit = self.net.faults_active().then(|| Box::new(XmitState::default()));
        self.crash = crash.map(|p| Box::new(crash::CrashCtx::new(p, self.cfg.num_procs)));
        self
    }

    /// The fault plan installed on the interconnect, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.net.fault_plan()
    }

    /// Enable the progress watchdog: abort with a structured
    /// [`StallDiagnosis`] when any processor stays continuously stalled for
    /// `horizon` cycles while the machine is still processing events.
    /// Catches livelocks that `max_cycles` alone would only report long
    /// after the fact. Choose a horizon comfortably above the longest
    /// legitimate wait (barrier skew, a deep lock queue, link-layer
    /// backoff).
    pub fn with_watchdog(mut self, horizon: Cycle) -> Self {
        self.watchdog = Some(horizon.max(1));
        self
    }

    /// Track symbolic last-writer values and the lock-grant order, enabling
    /// the checker's final-memory comparison against the reference
    /// sequential interpreter.
    pub fn with_value_tracking(mut self) -> Self {
        self.values = Some(values::ValueTracker::new(self.cfg.num_procs));
        self
    }

    /// Enable the online happens-before race detector: per-processor vector
    /// clocks joined along the sync edges the machine executes (lock
    /// release→acquire, barrier arrive→depart), with FastTrack-style
    /// per-word epoch metadata. Results land in [`MachineStats::races`] at
    /// end of run; see [`Machine::race_stats`] for the live view.
    pub fn with_race_detection(mut self) -> Self {
        self.race = Some(Box::new(lrc_race::RaceDetector::new(
            self.cfg.num_procs,
            self.cfg.word_size as u64,
        )));
        self
    }

    /// Live race-detection counters and reports (`None` when detection is
    /// off). After a completed run they are also folded into
    /// [`MachineStats::races`].
    pub fn race_stats(&self) -> Option<&lrc_sim::RaceStats> {
        self.race.as_ref().map(|r| r.stats())
    }

    /// True when race detection is enabled and has found no race so far.
    /// `None` when detection is off (no verdict — the DRF⇒SC value checks
    /// then rest on the workload's unchecked promise).
    pub fn race_free(&self) -> Option<bool> {
        self.race.as_ref().map(|r| r.race_free())
    }

    /// Enable miss classification (Table-2 instrumentation). Slows the run.
    pub fn with_classification(mut self) -> Self {
        self.classifier = Some(Classifier::new(self.cfg.num_procs, self.cfg.words_per_line()));
        self
    }

    /// Abort (panic) if simulated time exceeds `cycles` — a watchdog against
    /// protocol livelock.
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Debug aid: print every protocol message that concerns `line`.
    pub fn with_trace_line(mut self, line: u64) -> Self {
        self.trace_line = Some(line);
        self
    }

    /// Record a structured trace: every record passing `filter` lands in a
    /// bounded ring keeping the most recent `cap` entries. Retrieve it from
    /// the machine returned by [`Machine::run_keep`] via
    /// [`Machine::trace_records`], or export it with `lrc_trace::export`.
    pub fn with_trace_filter(mut self, filter: TraceFilter, cap: usize) -> Self {
        let o = self.obs_mut();
        o.filter = filter;
        o.sink = Some(Box::new(RingSink::new(cap)));
        self
    }

    /// Like [`Machine::with_trace_filter`], but records into a
    /// caller-supplied sink (unbounded capture, streaming, custom
    /// aggregation).
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>, filter: TraceFilter) -> Self {
        let o = self.obs_mut();
        o.filter = filter;
        o.sink = Some(sink);
        self
    }

    /// Enable latency histograms: request→reply round-trips per message
    /// class, lock hold/wait times, barrier arrival skew, and NACK retry
    /// counts, folded into [`MachineStats::latencies`] at end of run.
    pub fn with_latency_histograms(mut self) -> Self {
        let n = self.cfg.num_procs;
        self.obs_mut().probe = Some(obs::Probe::new(n));
        self
    }

    /// Enable the interval metrics sampler: every `interval` cycles,
    /// snapshot per-node NI occupancy, directory busy entries, in-flight
    /// messages, write-notice buffer fill, and per-proc cycle-attribution
    /// deltas into a deterministic [`TimeSeries`] (see
    /// [`Machine::time_series`]).
    pub fn with_sampler(mut self, interval: Cycle) -> Self {
        let n = self.cfg.num_procs;
        self.obs_mut().sampler = Some(obs::Sampler::new(interval, n));
        self
    }

    /// Arm the flight recorder explicitly: a bounded ring of the most
    /// recent `cap` records per node, dumped into any [`StallDiagnosis`].
    /// Runs with a watchdog, fault plan, or finite resources arm a
    /// default-depth recorder automatically.
    pub fn with_flight_recorder(mut self, cap: usize) -> Self {
        let n = self.cfg.num_procs;
        self.obs_mut().recorder = Some(FlightRecorder::new(n, cap));
        self
    }

    /// Legacy trace entry point: record message *sends*, optionally only
    /// those concerning `line`, into a `cap`-deep ring.
    #[deprecated(note = "use with_trace_filter(TraceFilter::..., cap) instead")]
    pub fn with_trace(self, line: Option<u64>, cap: usize) -> Self {
        let filter = match line {
            Some(l) => TraceFilter::line(l),
            None => TraceFilter::all(),
        }
        .sends_only();
        self.with_trace_filter(filter, cap)
    }

    /// The recorded trace (empty if tracing was off), sorted by
    /// `(at, seq)` into one deterministic timeline. Protocol processors
    /// run ahead of the event clock inside their occupancy windows, so
    /// raw emission order is not time-monotone; this accessor's order is.
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        let mut v = self
            .obs
            .as_ref()
            .and_then(|o| o.sink.as_ref())
            .map(|s| s.snapshot())
            .unwrap_or_default();
        v.sort_unstable_by_key(|r| (r.at, r.seq));
        v
    }

    /// The sampler's time series so far (`None` when sampling is off).
    pub fn time_series(&self) -> Option<&TimeSeries> {
        self.obs.as_ref().and_then(|o| o.sampler.as_ref()).map(|s| &s.series)
    }

    /// The flight recorder's merged tail (empty when no recorder is armed).
    pub fn flight_tail(&self) -> Vec<TraceRecord> {
        self.obs
            .as_ref()
            .and_then(|o| o.recorder.as_ref())
            .map(|r| r.tail())
            .unwrap_or_default()
    }

    /// Live latency histograms accumulated so far (`None` when probes are
    /// off). After a completed run they are folded into
    /// [`MachineStats::latencies`] and this view is empty again.
    pub fn latency_stats(&self) -> Option<&LatencyStats> {
        self.obs.as_ref().and_then(|o| o.probe.as_ref()).map(|p| &p.hist)
    }

    /// Sweep the global coherence invariants every `events` handled events,
    /// panicking with a machine dump on the first violation. Expensive —
    /// meant for tests and debugging (see `machine::invariants`).
    pub fn with_invariant_checks(mut self, events: u64) -> Self {
        self.check_every = events.max(1);
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Finite-resource counters accumulated so far (NACKs, NI rejections,
    /// write-notice overflows). Live during checker-stepped runs, where no
    /// [`RunResult`] is produced.
    pub fn resource_stats(&self) -> &lrc_sim::ResourceStats {
        &self.stats.resources
    }

    /// Run `workload` to completion and return the collected statistics.
    ///
    /// # Panics
    /// On deadlock (event queue empty with unfinished processors) or when
    /// a watchdog fires — both indicate protocol bugs (or unrecoverable
    /// injected faults) and panic with the full [`StallDiagnosis`]. Use
    /// [`Machine::try_run`] to receive the diagnosis as an error value
    /// instead.
    pub fn run(self, workload: Box<dyn Workload>) -> RunResult {
        self.run_keep(workload).0
    }

    /// Like [`Machine::run`], but returns the machine alongside the result
    /// so callers can inspect the final directory and cache state (used by
    /// the protocol test suites and handy for debugging workloads).
    pub fn run_keep(self, workload: Box<dyn Workload>) -> (RunResult, Machine) {
        match self.try_run_keep(workload) {
            Ok(out) => out,
            Err(diag) => panic!("{diag}"),
        }
    }

    /// Run `workload` to completion, reporting no-progress as a structured
    /// [`StallDiagnosis`] instead of panicking. This is the entry point for
    /// harnesses that expect wedging (the chaos soak): an unrecoverable
    /// injected fault surfaces here as a diagnosis naming the stalled
    /// processors, pending fences, and abandoned deliveries.
    pub fn try_run(self, workload: Box<dyn Workload>) -> Result<RunResult, Box<StallDiagnosis>> {
        self.try_run_keep(workload).map(|(r, _)| r)
    }

    /// Like [`Machine::try_run`], but returns the machine alongside the
    /// result on success.
    pub fn try_run_keep(
        self,
        workload: Box<dyn Workload>,
    ) -> Result<(RunResult, Machine), Box<StallDiagnosis>> {
        self.try_run_wedge(workload).map_err(|(diag, _)| diag)
    }

    /// Like [`Machine::try_run_keep`], but a stall also hands back the
    /// wedged machine itself, so harnesses can checkpoint the exact state
    /// the watchdog fired in (the chaos soak dumps it next to the wedge
    /// report for offline replay).
    pub fn try_run_wedge(
        mut self,
        workload: Box<dyn Workload>,
    ) -> Result<(RunResult, Machine), (Box<StallDiagnosis>, Box<Machine>)> {
        self.start_run(workload);
        let run_started = std::time::Instant::now();
        match self.run_until(Cycle::MAX) {
            // The queue drained (or an event landed at `Cycle::MAX`, which
            // `max_cycles` — capped well below — would have rejected first).
            Ok(_) => {}
            Err(diag) => return Err((diag, Box::new(self))),
        }
        self.finish_run(run_started)
    }

    /// Install `workload` and seed the event queue for a fresh run: one
    /// `ProcStep` per processor at t=0, the flight recorder auto-armed for
    /// at-risk runs, and the metrics sampler's first tick. Drive the run
    /// with [`Machine::run_until`] and close it with
    /// [`Machine::finish_run`]; [`Machine::try_run`] composes the three.
    /// Restored checkpoints skip this — their queue already holds the
    /// mid-run events.
    pub fn start_run(&mut self, workload: Box<dyn Workload>) {
        assert_eq!(
            workload.num_procs(),
            self.cfg.num_procs,
            "workload built for a different processor count"
        );
        self.workload = workload;

        for p in 0..self.cfg.num_procs {
            self.nodes[p].step_scheduled = true;
            self.push_ev(0, p, Event::ProcStep(p));
        }

        self.arm_default_recorder();
        // Seed the sampler's first tick only when one is configured, so an
        // unsampled run's event stream is bit-identical to builds without
        // the sampler.
        if let Some(iv) = self.obs.as_ref().and_then(|o| o.sampler.as_ref()).map(|s| s.interval)
        {
            self.push_ev(iv, 0, Event::Sample);
        }
        if self.crash.is_some() {
            self.schedule_crash_events();
        }
    }

    /// At-risk runs (watchdog, fault plan, finite resources) arm a
    /// default-depth flight recorder so any StallDiagnosis carries the
    /// events leading up to the stall. The recorder only observes —
    /// statistics and event order are untouched. (Also used when restoring
    /// a checkpoint, which stores no ring contents: the re-armed recorder
    /// refills within `DEFAULT_FLIGHT_CAP` records.)
    pub(crate) fn arm_default_recorder(&mut self) {
        if self.watchdog.is_some()
            || self.xmit.is_some()
            || self.crash.is_some()
            || !self.cfg.resources.is_unbounded()
        {
            let n = self.cfg.num_procs;
            let o = self.obs_mut();
            if o.recorder.is_none() {
                o.recorder = Some(FlightRecorder::new(n, obs::DEFAULT_FLIGHT_CAP));
            }
        }
    }

    /// Drive the event loop until the queue drains or the next pending
    /// event is at or past `limit` (which is left unpopped). Returns
    /// `Ok(true)` when paused with events still pending, `Ok(false)` when
    /// the queue drained — the pause point is a quiescent kernel state a
    /// checkpoint can capture. Pausing does not disturb the run: resuming
    /// with a higher limit replays the uninterrupted event order exactly.
    pub fn run_until(&mut self, limit: Cycle) -> Result<bool, Box<StallDiagnosis>> {
        // How often (in handled events) the stall watchdog rescans the
        // processors: rare enough to stay off the hot path, frequent enough
        // that a livelock is caught within a sliver of its horizon.
        const WATCHDOG_SCAN_EVERY: u64 = 4096;

        loop {
            match self.queue.peek_time() {
                None => return Ok(false),
                Some(t) if t >= limit => return Ok(true),
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked non-empty");
            if t > self.max_cycles {
                return Err(Box::new(
                    self.diagnose(StallReason::CycleHorizon(self.max_cycles), t),
                ));
            }
            self.dispatch(t, ev);
            self.handled += 1;
            if self.crash.is_some() {
                self.crash_nth_poll(t);
            }
            if self.watchdog.is_some() && self.handled.is_multiple_of(WATCHDOG_SCAN_EVERY) {
                if let Some(diag) = self.scan_stalls(t) {
                    return Err(Box::new(diag));
                }
            }
            if self.check_every != 0 && self.handled.is_multiple_of(self.check_every) {
                let handled = self.handled;
                self.check_invariants(&format!("event {handled} at t={t}"));
            }
        }
    }

    /// Close out a run whose queue has drained: end-of-run invariants, the
    /// deadlock check, statistics finalization, and the [`RunResult`].
    /// `run_started` anchors `sim_wall_secs`; a resumed run passes its own
    /// resume instant, so the wall clock covers only the post-restore
    /// segment (simulated results are unaffected).
    pub fn finish_run(
        mut self,
        run_started: std::time::Instant,
    ) -> Result<(RunResult, Machine), (Box<StallDiagnosis>, Box<Machine>)> {
        if self.check_every != 0 {
            self.check_invariants("end of run");
        }

        if self.finished != self.live_finish_target() {
            let at = self.queue.now();
            let diag = self.diagnose(StallReason::Deadlock, at);
            return Err((Box::new(diag), Box::new(self)));
        }

        self.collect_fault_stats();
        if let Some(probe) = self.obs.as_deref_mut().and_then(|o| o.probe.as_mut()) {
            let folded = std::mem::take(&mut probe.hist);
            self.stats.latencies.merge(&folded);
        }
        if let Some(r) = self.race.as_ref() {
            self.stats.races = r.stats().clone();
        }
        for (i, n) in self.nodes.iter().enumerate() {
            self.stats.procs[i].pp_busy = n.pp.busy_cycles();
            self.stats.procs[i].mem_busy = n.mem.busy_cycles();
        }
        self.stats.total_cycles = self
            .stats
            .procs
            .iter()
            .map(|p| p.finish_time)
            .max()
            .unwrap_or(0);
        let (ni_peak_ingress, ni_peak_egress) = self.net.ni_peaks();
        let result = RunResult {
            protocol: self.protocol,
            workload: self.workload.name().to_string(),
            stats: self.stats.clone(),
            events: self.handled,
            peak_queue_depth: self.queue.peak_len(),
            peak_queue_depths: vec![self.queue.peak_len()],
            sim_wall_secs: run_started.elapsed().as_secs_f64(),
            ni_peak_ingress,
            ni_peak_egress,
        };
        Ok((result, self))
    }

    /// Route one popped event to its handler (shared by the normal run
    /// loop and the checker's [`Machine::step_choice`]).
    pub(crate) fn dispatch(&mut self, t: Cycle, ev: Event) {
        // Crash-stop: events from or to a dead node vanished with it.
        if let Some(c) = self.crash.as_deref() {
            if !c.crashed.is_empty() && self.crash_filter(&ev) {
                return;
            }
        }
        match ev {
            Event::ProcStep(p) => self.proc_step(p, t),
            Event::Msg(m) => self.handle_msg(t, m),
            Event::CbFlush(p, line) => self.cb_flush_timer(p, t, line),
            Event::XMsg { msg, seq, corrupt } => self.handle_xmsg(t, msg, seq, corrupt),
            Event::LinkCtl { seq, ack } => self.handle_link_ctl(t, seq, ack),
            Event::RetryTimer { seq } => self.handle_retry_timer(t, seq),
            Event::NiRetry { msg, attempts } => {
                self.pending_ni_retries -= 1;
                self.stats.resources.ni_retries += 1;
                if self.obs.is_some() {
                    self.obs_resource(t, msg.src, ResourceEv::NiRetry);
                }
                self.submit_bounded_attempt(t, msg, attempts);
            }
            Event::NackRetry { msg } => {
                self.stats.resources.nack_retries += 1;
                if self.obs.is_some() {
                    self.obs_resource(t, msg.src, ResourceEv::NackRetry);
                }
                self.send(t, msg.src, msg.dst, msg.kind);
            }
            Event::Sample => {
                self.take_sample(t);
                self.rearm_sampler(t);
            }
            Event::LeaseTick => self.lease_tick(t),
            Event::CrashNode { victim } => self.crash_now(t, victim),
        }
    }

    /// Fold the interconnect's and link layer's fault counters into the
    /// machine statistics (end of run).
    fn collect_fault_stats(&mut self) {
        let fc = self.net.fault_counters();
        let f = &mut self.stats.faults;
        f.dropped = fc.dropped;
        f.duplicated = fc.duplicated;
        f.delayed = fc.delayed;
        f.corrupted = fc.corrupted;
        if let Some(xm) = self.xmit.as_deref() {
            f.link_nacks = xm.counters.link_nacks;
            f.retries = xm.counters.retries;
            f.timeouts = xm.counters.timeouts;
            f.retries_exhausted = xm.counters.retries_exhausted;
            f.dup_suppressed = xm.counters.dup_suppressed;
            f.link_msgs = xm.counters.link_msgs;
        }
    }

    /// Watchdog scan: is any processor continuously stalled beyond the
    /// horizon at time `t`?
    fn scan_stalls(&self, t: Cycle) -> Option<StallDiagnosis> {
        let horizon = self.watchdog?;
        let tripped = self.nodes.iter().any(|n| {
            n.status != ProcStatus::Running
                && n.status != ProcStatus::Finished
                && n.status != ProcStatus::Crashed
                && t.saturating_sub(n.stall_start) > horizon
        });
        tripped.then(|| self.diagnose(StallReason::ProcStallHorizon(horizon), t))
    }

    /// When a generic horizon trip coincides with visible finite-resource
    /// pressure, name the resource: a spent NACK budget on a still-busy
    /// line is a NACK storm, senders waiting out NI backoff point at a
    /// full queue. `None` when neither pattern is present.
    fn classify_resource_pressure(&self) -> Option<StallReason> {
        if self.cfg.resources.dir_request_slots.is_some() {
            let budget = self.cfg.resources.nack_retry_budget;
            if let Some((line, &nacks)) =
                self.nacks_given.iter().max_by_key(|&(_, &n)| n)
            {
                if nacks > 0 && nacks >= budget {
                    return Some(StallReason::NackStorm { line, nacks });
                }
            }
        }
        if self.pending_ni_retries > 0 {
            if let Some((node, occupancy, cap)) = self.last_ni_reject {
                return Some(StallReason::NiQueueFull { node, occupancy, cap });
            }
        }
        None
    }

    /// Build the structured no-progress report.
    fn diagnose(&self, reason: StallReason, at: Cycle) -> StallDiagnosis {
        // Horizon trips and deadlocks are symptoms; if finite-resource
        // pressure is the visible cause, report that instead of the generic
        // reason. (A requester that spent its whole NACK budget falls back
        // to parking, so a never-resolving NACK storm ends as a drained
        // queue — a Deadlock by mechanism, a storm by cause.)
        let reason = match reason {
            StallReason::Deadlock
            | StallReason::CycleHorizon(_)
            | StallReason::ProcStallHorizon(_) => self
                .classify_crash()
                .or_else(|| self.classify_resource_pressure())
                .unwrap_or(reason),
            r => r,
        };
        let stalled: Vec<StalledProc> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.status != ProcStatus::Running && n.status != ProcStatus::Finished)
            .map(|(p, n)| StalledProc {
                proc: p,
                status: format!("{:?}", n.status),
                since: n.stall_start,
            })
            .collect();
        let pending_fences = self
            .nodes
            .iter()
            .filter(|n| matches!(n.status, ProcStatus::Releasing(_)))
            .count();
        let (in_flight_msgs, abandoned_msgs) = match self.xmit.as_deref() {
            Some(xm) => (
                xm.in_flight.len(),
                xm.gave_up.iter().map(XmitState::render_msg).collect(),
            ),
            None => (0, Vec::new()),
        };
        StallDiagnosis {
            reason,
            at,
            finished: self.finished,
            procs: self.cfg.num_procs,
            stalled,
            pending_fences,
            in_flight_msgs,
            abandoned_msgs,
            pending_events: self.queue.len(),
            recent_events: self
                .obs
                .as_ref()
                .and_then(|o| o.recorder.as_ref())
                .map(|r| r.render_tail())
                .unwrap_or_default(),
            machine_dump: self.dump(),
            shard_clocks: Vec::new(),
        }
    }

    /// Take a recycled waiters vector from the pool (or a fresh one).
    pub(crate) fn take_waiters(&mut self) -> Vec<NodeId> {
        self.waiter_pool.pop().unwrap_or_default()
    }

    /// Return a drained waiters vector to the pool for reuse.
    pub(crate) fn recycle_waiters(&mut self, mut v: Vec<NodeId>) {
        v.clear();
        if self.waiter_pool.len() < 64 {
            self.waiter_pool.push(v);
        }
    }

    // ---- shared helpers ----------------------------------------------------

    /// Next deterministic tie-break key for an event scheduled by `owner`
    /// (the node whose handler is doing the scheduling): the node id in the
    /// high bits, that node's private monotone counter in the low 48.
    /// Same-cycle events pop in key order, so the total event order is a
    /// pure function of the simulated machine's history — independent of
    /// queue insertion order, which is what lets the sharded engine ingest
    /// cross-shard messages at window edges and still replay the sequential
    /// kernel's order bit-for-bit.
    #[inline]
    pub(crate) fn ev_key(&mut self, owner: NodeId) -> u64 {
        let s = self.ev_seq[owner];
        self.ev_seq[owner] = s + 1;
        ((owner as u64) << 48) | s
    }

    /// Schedule `ev` at `t` under a key owned by `owner`.
    #[inline]
    pub(crate) fn push_ev(&mut self, t: Cycle, owner: NodeId, ev: Event) {
        let key = self.ev_key(owner);
        self.queue.push(t, key, ev);
    }

    /// Can messages on one src→dst channel be observed out of send order?
    /// Only two mechanisms reorder deliveries: link-layer retransmission
    /// under an active fault plan, and the model checker's interleaving
    /// exploration (`pop_nth` choice points, NACK injection). The protocol's
    /// defensive cross-node peeks — stale evict hints, cancelled forwards —
    /// are gated on this, so fault-free production runs stay free of
    /// cross-node reads and remain shard-partitionable (`parallel_eligible`
    /// excludes every reordering mode).
    #[inline]
    pub(crate) fn delivery_reordering_possible(&self) -> bool {
        self.xmit.is_some() || self.choice_driven || self.nack_nth.is_some()
    }

    /// Line containing byte address `a`.
    #[inline]
    pub(crate) fn line_of(&self, a: Addr) -> LineAddr {
        LineAddr::containing(a, self.cfg.line_size)
    }

    /// Word index of byte address `a` within its line.
    #[inline]
    pub(crate) fn word_of(&self, a: Addr) -> usize {
        self.line_of(a).word_index(a, self.cfg.line_size, self.cfg.word_size)
    }

    /// Page number of byte address `a` (pow2 page sizes shift — this sits
    /// on the home-lookup path of every miss).
    #[inline]
    fn page_of(&self, a: Addr) -> u64 {
        let ps = self.cfg.page_size as u64;
        if ps.is_power_of_two() {
            a >> ps.trailing_zeros()
        } else {
            a / ps
        }
    }

    /// Home node of `line` (static policies).
    #[inline]
    pub(crate) fn home_of(&self, line: LineAddr) -> NodeId {
        let addr = line.base(self.cfg.line_size);
        if self.cfg.placement == lrc_sim::Placement::FirstTouch {
            if let Some(&h) = self.page_home.get(self.page_of(addr)) {
                return h;
            }
        }
        self.cfg.home_of(addr)
    }

    /// Home node of `line`, assigning the page to `toucher` on first touch
    /// under `Placement::FirstTouch`. Use at reference-issue sites.
    #[inline]
    pub(crate) fn home_of_touch(&mut self, line: LineAddr, toucher: NodeId) -> NodeId {
        if self.cfg.placement == lrc_sim::Placement::FirstTouch {
            let page = self.page_of(line.base(self.cfg.line_size));
            return *self.page_home.entry_or_insert_with(page, || toucher);
        }
        self.home_of(line)
    }

    /// Send a protocol message, recording traffic and scheduling delivery.
    pub(crate) fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, kind: MsgKind) {
        if self.crash.is_some() && src != dst {
            // Degraded mode: the sender knows `dst` is dead — requests
            // forge their own replies, the rest is suppressed.
            if self.crash_suspects(src, dst) {
                self.degrade_send(now, src, kind);
                return;
            }
            // Track which peer owes each unacked write-through/write-back,
            // so a death writes off exactly the acks it can never send.
            let c = self.crash.as_deref_mut().expect("checked above");
            match kind {
                MsgKind::WriteThrough { .. } => c.wt_to[src][dst] += 1,
                MsgKind::WriteBack { .. } => c.wbk_to[src][dst] += 1,
                _ => {}
            }
        }
        let bytes = kind.bytes(
            self.cfg.ctrl_msg_bytes,
            self.cfg.line_size as u64,
            self.cfg.word_size as u64,
        );
        self.stats.procs[src].traffic.record(kind.traffic_class(), bytes);
        if let (Some(tl), Some(l)) = (self.trace_line, kind.line()) {
            if l.0 == tl {
                eprintln!("[t={now}] {src}->{dst} {kind:?}");
            }
        }
        if self.obs.is_some() {
            self.obs_msg_send(now, src, dst, kind);
        }
        if self.xmit.is_some() && src != dst {
            self.xmit_send(now, Msg { src, dst, kind });
            return;
        }
        if self.ni_limited {
            self.submit_bounded(now, Msg { src, dst, kind });
            return;
        }
        let arrival = self
            .net
            .send(now, src, dst, bytes)
            .unwrap_or_else(|e| panic!("{e}"));
        // The arrival time and tie key are both computed from sender-local
        // state, so a cross-shard delivery carries everything the receiving
        // shard needs to slot the message exactly where the sequential
        // kernel would have.
        let key = self.ev_key(src);
        let msg = Msg { src, dst, kind };
        match self.shard.as_deref_mut() {
            Some(sh) if sh.of_node[dst] != sh.id => {
                sh.outbox.push(parallel::OutMsg { at: arrival, key, msg });
            }
            _ => self.queue.push(arrival, key, Event::Msg(msg)),
        }
    }

    /// Hand `msg` to the finite-queue NI: accepted sends schedule delivery
    /// as usual; a full queue rejects the send and schedules a retry after
    /// capped exponential backoff, charging nothing to the wire. Retries
    /// re-enter here with a growing `attempts`, so a persistently full
    /// queue backs its senders off harder and harder (never livelocking —
    /// the queue drains with time, and backoff always advances time).
    fn submit_bounded(&mut self, now: Cycle, msg: Msg) {
        self.submit_bounded_attempt(now, msg, 0);
    }

    fn submit_bounded_attempt(&mut self, now: Cycle, msg: Msg, attempts: u32) {
        let bytes = msg.kind.bytes(
            self.cfg.ctrl_msg_bytes,
            self.cfg.line_size as u64,
            self.cfg.word_size as u64,
        );
        let outcome = self
            .net
            .try_send(now, msg.src, msg.dst, bytes)
            .unwrap_or_else(|e| panic!("{e}"));
        match outcome {
            Ok(arrival) => self.push_ev(arrival, msg.src, Event::Msg(msg)),
            Err(busy) => {
                let delay = self.cfg.resources.backoff(attempts);
                let r = &mut self.stats.resources;
                r.ni_rejects += 1;
                r.backpressure_stall_cycles += delay;
                self.last_ni_reject = Some((busy.node, busy.occupancy, busy.cap));
                self.pending_ni_retries += 1;
                if self.obs.is_some() {
                    self.obs_resource(
                        now,
                        busy.node,
                        ResourceEv::NiReject {
                            occupancy: busy.occupancy.min(u32::MAX as usize) as u32,
                            cap: busy.cap.min(u32::MAX as usize) as u32,
                        },
                    );
                }
                self.push_ev(now + delay, msg.src, Event::NiRetry { msg, attempts: attempts + 1 });
            }
        }
    }

    // ---- link-layer reliable delivery (active fault plans only) ------------

    /// Frame `msg` with a fresh sequence number, buffer it for
    /// retransmission, and put the first copy on the (faulty) wire.
    fn xmit_send(&mut self, now: Cycle, msg: Msg) {
        let xm = self.xmit.as_deref_mut().expect("xmit_send requires a fault plan");
        let seq = xm.next_seq;
        xm.next_seq += 1;
        xm.in_flight.insert(seq, InFlight { msg, attempts: 0, next_deadline: 0 });
        self.transmit(now, seq);
    }

    /// Put one copy of in-flight sequence `seq` on the wire and (re)arm its
    /// retry timer with exponential backoff.
    fn transmit(&mut self, now: Cycle, seq: u64) {
        let Some(inf) = self.xmit.as_deref().and_then(|xm| xm.in_flight.get(&seq)) else {
            return;
        };
        let (msg, attempts) = (inf.msg, inf.attempts);
        let bytes = msg.kind.bytes(
            self.cfg.ctrl_msg_bytes,
            self.cfg.line_size as u64,
            self.cfg.word_size as u64,
        );
        // Finite NI queues: a full queue rejects this transmission attempt
        // outright (nothing reaches the wire); the retry timer armed below
        // re-attempts after backoff, so the PR 3 retransmit machinery
        // doubles as the backpressure loop under fault plans.
        let ni_rejected = match self.net.ni_busy(now, msg.src, msg.dst) {
            Some(busy) => {
                self.stats.resources.ni_rejects += 1;
                self.last_ni_reject = Some((busy.node, busy.occupancy, busy.cap));
                if self.obs.is_some() {
                    self.obs_resource(
                        now,
                        busy.node,
                        ResourceEv::NiReject {
                            occupancy: busy.occupancy.min(u32::MAX as usize) as u32,
                            cap: busy.cap.min(u32::MAX as usize) as u32,
                        },
                    );
                }
                true
            }
            None => false,
        };
        if !ni_rejected {
            let delivery = self
                .net
                .send_classed(now, msg.src, msg.dst, bytes, msg.kind.msg_class())
                .unwrap_or_else(|e| panic!("{e}"));
            for a in [delivery.first, delivery.dup].into_iter().flatten() {
                self.push_ev(a.at, msg.src, Event::XMsg { msg, seq, corrupt: a.corrupt });
            }
        }
        let deadline = now
            + self
                .net
                .fault_plan()
                .expect("transmit requires a fault plan")
                .backoff(attempts);
        if let Some(inf) = self.xmit.as_deref_mut().and_then(|xm| xm.in_flight.get_mut(&seq)) {
            inf.next_deadline = deadline;
        }
        self.push_ev(deadline, msg.src, Event::RetryTimer { seq });
    }

    /// One framed copy arrived at its destination NI: checksum, ACK/NACK,
    /// dedupe, and hand clean first deliveries to the protocol.
    fn handle_xmsg(&mut self, t: Cycle, msg: Msg, seq: u64, corrupt: bool) {
        if corrupt {
            if let Some(xm) = self.xmit.as_deref_mut() {
                xm.counters.link_nacks += 1;
            }
            self.send_link_ctl(t, msg.dst, msg.src, seq, false);
            return;
        }
        self.send_link_ctl(t, msg.dst, msg.src, seq, true);
        let xm = self.xmit.as_deref_mut().expect("XMsg events require a fault plan");
        if !xm.seen.insert(seq) {
            xm.counters.dup_suppressed += 1;
            return;
        }
        self.handle_msg(t, msg);
    }

    /// Send a link-layer ACK or checksum NACK for `seq` back to the sender.
    /// Control copies that the fabric corrupts are discarded on arrival
    /// (the sender's retry timer covers the loss).
    fn send_link_ctl(&mut self, now: Cycle, src: NodeId, dst: NodeId, seq: u64, ack: bool) {
        if let Some(xm) = self.xmit.as_deref_mut() {
            xm.counters.link_msgs += 1;
        }
        let delivery = self
            .net
            .send_classed(now, src, dst, self.cfg.ctrl_msg_bytes, lrc_mesh::MsgClass::Link)
            .unwrap_or_else(|e| panic!("{e}"));
        for a in [delivery.first, delivery.dup].into_iter().flatten() {
            if !a.corrupt {
                self.push_ev(a.at, src, Event::LinkCtl { seq, ack });
            }
        }
    }

    /// A link ACK retires the in-flight entry; a checksum NACK triggers an
    /// immediate retransmission (or gives the message up once retries are
    /// exhausted).
    fn handle_link_ctl(&mut self, t: Cycle, seq: u64, ack: bool) {
        let xm = self.xmit.as_deref_mut().expect("LinkCtl events require a fault plan");
        if ack {
            xm.in_flight.remove(&seq);
            return;
        }
        if self.bump_attempts(seq) {
            self.transmit(t, seq);
        }
    }

    /// The retry timer for `seq` expired: retransmit unless the entry was
    /// acknowledged meanwhile or this timer was superseded by a NACK-driven
    /// retransmission's later deadline.
    fn handle_retry_timer(&mut self, t: Cycle, seq: u64) {
        let xm = self.xmit.as_deref_mut().expect("RetryTimer events require a fault plan");
        let Some(inf) = xm.in_flight.get(&seq) else {
            return;
        };
        if t < inf.next_deadline {
            return;
        }
        xm.counters.timeouts += 1;
        if self.bump_attempts(seq) {
            self.transmit(t, seq);
        }
    }

    /// Count one more delivery attempt for `seq`. Returns true when a
    /// retransmission should happen; false when the entry is gone or the
    /// link layer just gave the message up (retries exhausted).
    fn bump_attempts(&mut self, seq: u64) -> bool {
        let max_retries = self
            .net
            .fault_plan()
            .expect("link layer requires a fault plan")
            .max_retries;
        let xm = self.xmit.as_deref_mut().expect("link layer requires a fault plan");
        let Some(inf) = xm.in_flight.get_mut(&seq) else {
            return false;
        };
        inf.attempts += 1;
        if inf.attempts > max_retries {
            let inf = xm.in_flight.remove(&seq).expect("checked above");
            xm.counters.retries_exhausted += 1;
            xm.gave_up.push(inf.msg);
            return false;
        }
        xm.counters.retries += 1;
        true
    }

    /// Queue `msg` until its line's directory entry frees; the NAK probe
    /// occupies the home's protocol processor briefly.
    pub(crate) fn park(&mut self, msg: Msg, t: Cycle) {
        let _ = self.nodes[msg.dst].pp.occupy(t, self.cfg.write_notice_cost);
        let line = msg.kind.line().expect("parked messages concern a line");
        let q = self.parked.entry_or_default(line.0);
        q.push_back((msg, t));
        let depth = q.len() as u64;
        if depth > self.stats.resources.peak_parked {
            self.stats.resources.peak_parked = depth;
        }
    }

    /// Decide how the home treats a request that found `line`'s entry busy
    /// (after the dead-forward escape declined to handle it):
    /// `Some(attempt)` = send a BUSY-NACK back to the requester,
    /// `None` = park it in the home's queue.
    ///
    /// With unbounded request slots (the default) this always parks,
    /// preserving the assume-quiescent behavior bit-for-bit. With
    /// `dir_request_slots = Some(k)`, the first `k` racers still park and
    /// later ones are NACKed — but only `nack_retry_budget` times per busy
    /// episode; once the budget is spent, requests park regardless, so
    /// forward progress never depends on a retry winning a race (and the
    /// checker's state space stays finite). `nack_nth` (checker mode)
    /// forces a NACK at an exact request ordinal instead.
    pub(crate) fn busy_action(&mut self, line: LineAddr) -> Option<u32> {
        let forced = self.nack_nth == Some(self.park_seq);
        self.park_seq += 1;
        if forced {
            return Some(0);
        }
        let cap = self.cfg.resources.dir_request_slots?;
        if self.parked.get(line.0).map_or(0, |q| q.len()) < cap {
            return None;
        }
        let budget = self.cfg.resources.nack_retry_budget;
        let n = self.nacks_given.entry_or_default(line.0);
        if *n < budget {
            *n += 1;
            Some(*n - 1)
        } else {
            self.stats.resources.nack_park_fallbacks += 1;
            None
        }
    }

    /// BUSY-NACK `m` back to its sender: the home's protocol processor
    /// handles the rejection like a NAK probe, and the requester re-sends
    /// the request after `attempt`-scaled backoff. The NACK echoes enough
    /// of the request to reconstruct it verbatim at the requester.
    pub(crate) fn send_busy_nack(&mut self, t: Cycle, m: Msg, line: LineAddr, attempt: u32) {
        self.stats.resources.busy_nacks += 1;
        let done = self.nodes[m.dst].pp.occupy(t, self.cfg.write_notice_cost);
        let (for_write, had_copy, words) = match m.kind {
            MsgKind::WriteReq { had_copy, words, .. } => (true, had_copy, words),
            _ => (false, false, 0),
        };
        self.send(done, m.dst, m.src, MsgKind::BusyNack { line, for_write, had_copy, words, attempt });
    }

    /// Requester side of a BUSY-NACK: wait out the capped exponential
    /// backoff, then re-send the original request. The outstanding
    /// transaction entry is untouched — a NACKed retry is observationally a
    /// parked request re-dispatched later, just with the wait spent at the
    /// requester instead of in the home's queue.
    pub(crate) fn on_busy_nack(&mut self, t: Cycle, m: Msg) {
        let MsgKind::BusyNack { line, for_write, had_copy, words, attempt } = m.kind else {
            unreachable!("on_busy_nack dispatched on a non-BusyNack message");
        };
        let done = self.nodes[m.dst].pp.occupy(t, self.cfg.write_notice_cost);
        let delay = self.cfg.resources.backoff(attempt);
        self.stats.resources.backpressure_stall_cycles += delay;
        if self.obs.is_some() {
            self.obs_resource(t, m.dst, ResourceEv::BusyNack { attempt: attempt + 1 });
        }
        let kind = if for_write {
            MsgKind::WriteReq { line, had_copy, words }
        } else {
            MsgKind::ReadReq { line }
        };
        self.push_ev(done + delay, m.dst, Event::NackRetry { msg: Msg { src: m.dst, dst: m.src, kind } });
    }

    /// If `line`'s entry is free (no busy 3-hop, no ack collection) and a
    /// request is queued, re-dispatch the oldest one after one NAK retry
    /// round trip.
    pub(crate) fn maybe_release_parked(&mut self, t: Cycle, line: LineAddr) {
        let free = self
            .dir
            .get(line.0)
            .is_none_or(|e| !e.busy && e.pending.is_none());
        if !free {
            return;
        }
        // The busy episode is over: the next one gets a fresh NACK budget.
        // (Guarded — `nacks_given` stays untouched, hence empty, at the
        // default unbounded configuration.)
        if self.cfg.resources.dir_request_slots.is_some() {
            self.nacks_given.remove(line.0);
        }
        // A dead node's parked requests are dead weight: re-dispatching one
        // would evaporate in the crash filter and strand every live request
        // queued behind it (the release chain advances one message per
        // episode). Drop them here, where the queue is about to drive the
        // next episode — suspicion-time reclamation only covers requests
        // parked before the observer suspected.
        if let Some(c) = self.crash.as_deref() {
            let crashed = c.crashed;
            if let Some(q) = self.parked.get_mut(line.0) {
                let before = q.len();
                q.retain(|(m, _)| !crashed.contains(m.src));
                self.stats.crashes.parked_dropped += (before - q.len()) as u64;
                if q.is_empty() {
                    self.parked.remove(line.0);
                }
            }
        }
        let Some(q) = self.parked.get_mut(line.0) else {
            return;
        };
        if let Some((msg, parked_at)) = q.pop_front() {
            if q.is_empty() {
                self.parked.remove(line.0);
            }
            // A queued request models a DASH requester NAK-retrying: each
            // retry re-probes the home's protocol processor. Charge the
            // probes the wait implied (capped), then re-dispatch after one
            // final retry round trip. This is the hot-spot degradation the
            // paper attributes to the eager protocol's 3-hop/invalidated
            // windows; the lazy protocol never parks, so it never pays it.
            let waited = t.saturating_sub(parked_at);
            let probes = (waited / self.cfg.nack_retry_delay.max(1)).min(32);
            if probes > 0 {
                let _ = self.nodes[msg.dst]
                    .pp
                    .occupy(t, probes * self.cfg.write_notice_cost);
            }
            let owner = msg.dst;
            self.push_ev(t + self.cfg.nack_retry_delay, owner, Event::Msg(msg));
        }
    }

    /// Mark `p` blocked at local time `now` with the given stall bucket.
    pub(crate) fn block(&mut self, p: ProcId, now: Cycle, kind: StallKind, status: ProcStatus) {
        let n = &mut self.nodes[p];
        debug_assert_eq!(n.status, ProcStatus::Running);
        n.status = status;
        n.stall_start = now;
        n.stall_kind = kind;
    }

    /// Resume `p` at time `t`: attribute the stall and schedule a step.
    ///
    /// `t` is clamped to the blocking time: a processor that ran ahead of
    /// the global clock inside its skew quantum must never resume in its
    /// own past, or cycles would be attributed twice.
    pub(crate) fn resume(&mut self, p: ProcId, t: Cycle) {
        let n = &mut self.nodes[p];
        debug_assert!(n.status != ProcStatus::Running && n.status != ProcStatus::Finished);
        let t = t.max(n.stall_start);
        let stall = t - n.stall_start;
        let kind = n.stall_kind;
        n.status = ProcStatus::Running;
        self.stats.procs[p].breakdown.add(kind, stall);
        if !n.step_scheduled {
            n.step_scheduled = true;
            let at = t.max(self.queue.now());
            self.push_ev(at, p, Event::ProcStep(p));
        }
    }

    /// Schedule a `ProcStep` for `p` at `t` unless one is already queued.
    pub(crate) fn schedule_step(&mut self, p: ProcId, t: Cycle) {
        if !self.nodes[p].step_scheduled {
            self.nodes[p].step_scheduled = true;
            let at = t.max(self.queue.now());
            self.push_ev(at, p, Event::ProcStep(p));
        }
    }

    /// Route a received message to the right handler.
    fn handle_msg(&mut self, t: Cycle, m: Msg) {
        use MsgKind::*;
        if self.obs.is_some() {
            self.obs_msg_recv(t, m);
        }
        if let Some(c) = self.crash.as_deref_mut() {
            if m.src != m.dst {
                // Any delivery refreshes the receiver's lease on the
                // sender; acks settle the sender's per-peer write credit
                // (saturating: recovery may have written it off already).
                if c.last_heard[m.dst][m.src] < t {
                    c.last_heard[m.dst][m.src] = t;
                }
                match m.kind {
                    WriteThroughAck { .. } => {
                        let owed = &mut c.wt_to[m.dst][m.src];
                        *owed = owed.saturating_sub(1);
                    }
                    WriteBackAck { .. } => {
                        let owed = &mut c.wbk_to[m.dst][m.src];
                        *owed = owed.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
        match m.kind {
            // Directory side (home node).
            ReadReq { .. } | WriteReq { .. } | WriteThrough { .. } | WriteBack { .. }
            | EvictNotify { .. } | InvAck { .. } | NoticeAck { .. } | CopyBack { .. }
            | ForwardNack { .. } => self.handle_at_home(t, m),
            // Cache side (requester / third party).
            ReadReply { .. } | WriteReply { .. } | WriteAck { .. } | WriteThroughAck { .. }
            | WriteBackAck { .. } | Invalidate { .. } | WriteNotice { .. } | Forward { .. }
            | OwnerData { .. } | BusyNack { .. } | ForwardCancel { .. } => self.handle_at_cache(t, m),
            // Synchronization.
            LockAcq { .. } | LockGrant { .. } | LockRel { .. } | BarrierArrive { .. }
            | BarrierRelease { .. } => self.handle_sync_msg(t, m),
            // Heartbeats exist only to refresh the lease updated above.
            Heartbeat => {}
        }
    }

    /// Human-readable machine dump for panic diagnostics.
    fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "protocol={} t={}", self.protocol, self.queue.now());
        self.dump_crash(&mut s);
        if !self.stats.resources.is_zero() {
            let _ = writeln!(s, "  resources: {:?}", self.stats.resources);
            let _ = writeln!(
                s,
                "  ni: pending_retries={} last_reject={:?} peaks(in,out)={:?}",
                self.pending_ni_retries,
                self.last_ni_reject,
                self.net.ni_peaks(),
            );
            for (l, &n) in self.nacks_given.iter() {
                let _ = writeln!(s, "  nacks line {l}: {n} this episode");
            }
        }
        if let Some(xm) = self.xmit.as_deref() {
            let _ = writeln!(
                s,
                "  link layer: next_seq={} in_flight={} gave_up={} {:?}",
                xm.next_seq,
                xm.in_flight.len(),
                xm.gave_up.len(),
                xm.counters,
            );
            let mut inflight: Vec<_> = xm.in_flight.iter().collect();
            inflight.sort_unstable_by_key(|&(&s, _)| s);
            for (seq, inf) in inflight.into_iter().take(16) {
                let _ = writeln!(
                    s,
                    "    seq {seq}: {} attempts={} due={}",
                    XmitState::render_msg(&inf.msg),
                    inf.attempts,
                    inf.next_deadline,
                );
            }
        }
        for (p, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                s,
                "  P{p}: {:?} wb={} cb={} out={} pend_inv={} delayed={} wt={} wbk={}",
                n.status,
                n.wb.len(),
                n.cb.len(),
                n.outstanding.len(),
                n.pending_invals.len(),
                n.delayed_writes.len(),
                n.wt_unacked,
                n.wbk_unacked,
            );
            let mut out: Vec<_> = n.outstanding.iter().collect();
            out.sort_unstable_by_key(|&(&l, _)| l);
            for (l, o) in out {
                let _ = writeln!(s, "    out line {l}: {o:?}");
            }
        }
        for (l, q) in self.parked.iter() {
            let e = self.dir.get(l);
            let _ = writeln!(
                s,
                "  parked line {l}: {} msgs {:?}; dir busy={:?} pending={:?} sharers={:b} writers={:b}",
                q.len(),
                q.iter().map(|(m, _)| (m.src, m.kind)).collect::<Vec<_>>(),
                e.map(|e| e.busy),
                e.map(|e| e.pending.is_some()),
                e.map_or(crate::directory::NodeSet::EMPTY, |e| e.sharers()),
                e.map_or(crate::directory::NodeSet::EMPTY, |e| e.writers()),
            );
        }
        // LineMap iteration is already in ascending line order.
        for (l, e) in self.dir.iter().filter(|(_, e)| e.pending.is_some()) {
            let _ = writeln!(
                s,
                "  dir line {l}: state={:?} sharers={:b} writers={:b} pending={:?}",
                e.state(),
                e.sharers(),
                e.writers(),
                e.pending
            );
        }
        s
    }

    /// The set of every node in the machine.
    #[inline]
    pub(crate) fn all_nodes_mask(&self) -> crate::directory::NodeSet {
        crate::directory::NodeSet::first_n(self.cfg.num_procs)
    }

    /// Apply the limited-pointer overflow rule to `line`'s entry after a
    /// sharer/writer was added (no-op for full-map directories).
    pub(crate) fn apply_pointer_limit(&mut self, line: LineAddr) {
        if let Some(k) = self.cfg.dir_pointers {
            if let Some(e) = self.dir.get_mut(line.0) {
                if e.sharer_count() as usize > k {
                    e.overflow = true;
                }
            }
        }
    }

    /// Immutable view of a directory entry (tests / invariant checks).
    pub fn dir_entry(&self, line: LineAddr) -> Option<&DirEntry> {
        self.dir.get(line.0)
    }

    /// Local cache permission of `line` at node `p` (tests / debugging).
    pub fn cache_state(&self, p: ProcId, line: LineAddr) -> lrc_mem::LineState {
        self.nodes[p].cache.state(line)
    }

    /// Lines queued for invalidation at `p`'s next acquire (lazy protocols).
    pub fn pending_invals(&self, p: ProcId) -> Vec<LineAddr> {
        let mut lines: Vec<LineAddr> =
            self.nodes[p].pending_invals.iter().map(|&l| LineAddr(l)).collect();
        lines.sort_unstable_by_key(|l| l.0);
        lines
    }
}

/// Placeholder workload used before `run` installs the real one.
struct NullWorkload;

impl Workload for NullWorkload {
    fn name(&self) -> &str {
        "null"
    }
    fn num_procs(&self) -> usize {
        0
    }
    fn addr_space(&self) -> u64 {
        0
    }
    fn next_op(&mut self, _proc: ProcId) -> lrc_sim::Op {
        lrc_sim::Op::Done
    }
}

//! The model checker's driving interface: single-event stepping with an
//! explicit choice of which pending event fires next, logical state
//! fingerprints for visited-state pruning, and quiescence analysis.
//!
//! A normal run ([`Machine::run`]) drains the event queue in (time,
//! insertion) order. The checker (`lrc-check`) instead clones the machine
//! at every state and calls [`Machine::step_choice`] with each possible
//! index `n`, firing the `n`-th pending event first — every reachable
//! interleaving of in-flight activity is a path in that tree. The event
//! handlers themselves are byte-identical to the simulator's: the checker
//! explores the *real* protocol implementation, not a model of it.

use super::values::SymbolicMemory;
use super::{Event, Machine};
use crate::node::ProcStatus;
use lrc_sim::{LockId, NodeId, Workload};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Why a drained (event-queue-empty) machine is not a clean final state.
/// These are the checker's liveness verdicts: a correct protocol drains to
/// *no* issues on every interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StuckState {
    /// A processor never reached `Done` (deadlock: nothing left to fire,
    /// but the processor is blocked).
    ProcessorStuck {
        /// The stuck processor.
        proc: usize,
        /// Its status, rendered for the report.
        status: String,
    },
    /// A coherence transaction never completed (RAC entry leaked).
    TransactionUndrained {
        /// The node holding the entry.
        proc: usize,
        /// The line with an outstanding transaction.
        line: u64,
    },
    /// Write-through or write-back acknowledgements never arrived.
    UnackedFlushes {
        /// The waiting node.
        proc: usize,
        /// Unacknowledged write-throughs.
        write_throughs: u32,
        /// Unacknowledged write-backs.
        write_backs: u32,
    },
    /// A coalescing-buffer entry was never drained (its flush timer died).
    CoalescingResidue {
        /// The node holding the entry.
        proc: usize,
        /// The undrained line.
        line: u64,
    },
    /// A directory ack collection never completed or a 3-hop forward never
    /// closed.
    DirectoryBusy {
        /// The affected line.
        line: u64,
        /// Outstanding acks (0 for a busy 3-hop entry).
        awaiting: u32,
    },
    /// Requests were parked at a home and never released.
    ParkedForever {
        /// The line whose queue still holds requests.
        line: u64,
        /// Number of requests still parked.
        requests: usize,
    },
    /// The link layer exhausted its retransmissions for a message and gave
    /// it up for lost: whatever the protocol was waiting on will never
    /// arrive (fault-injection runs only).
    DeliveryAbandoned {
        /// The abandoned message, rendered.
        msg: String,
    },
}

impl std::fmt::Display for StuckState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StuckState::ProcessorStuck { proc, status } => {
                write!(f, "P{proc} stuck in {status} with no events pending")
            }
            StuckState::TransactionUndrained { proc, line } => {
                write!(f, "P{proc} still has an outstanding transaction for line {line}")
            }
            StuckState::UnackedFlushes { proc, write_throughs, write_backs } => write!(
                f,
                "P{proc} still awaits {write_throughs} write-through / {write_backs} write-back ack(s)"
            ),
            StuckState::CoalescingResidue { proc, line } => {
                write!(f, "P{proc}'s coalescing buffer still holds line {line}")
            }
            StuckState::DirectoryBusy { line, awaiting } => {
                write!(f, "directory entry for line {line} busy (awaiting {awaiting} ack(s))")
            }
            StuckState::ParkedForever { line, requests } => {
                write!(f, "{requests} request(s) for line {line} parked forever")
            }
            StuckState::DeliveryAbandoned { msg } => {
                write!(f, "link layer abandoned delivery of {msg} (retries exhausted)")
            }
        }
    }
}

impl Machine {
    /// Install `workload` and seed the initial `ProcStep` events without
    /// running anything — the checker takes over from here with
    /// [`Machine::step_choice`].
    pub fn prepare(&mut self, workload: Box<dyn Workload>) {
        assert_eq!(
            workload.num_procs(),
            self.cfg.num_procs,
            "workload built for a different processor count"
        );
        self.workload = workload;
        for p in 0..self.cfg.num_procs {
            self.nodes[p].step_scheduled = true;
            self.push_ev(0, p, Event::ProcStep(p));
        }
    }

    /// Number of events currently pending — the branching factor at this
    /// state. Each `n < num_pending()` is a legal argument to
    /// [`Machine::step_choice`].
    pub fn num_pending(&self) -> usize {
        self.queue.len()
    }

    /// Fire the `n`-th pending event (in (time, insertion) order) and run
    /// its handler. Returns false if fewer than `n + 1` events are pending
    /// (nothing fired).
    pub fn step_choice(&mut self, n: usize) -> bool {
        self.choice_driven = true;
        let Some((t, ev)) = self.queue.pop_nth(n) else {
            return false;
        };
        self.dispatch(t, ev);
        self.handled += 1;
        if self.crash.is_some() {
            self.crash_nth_poll(t);
        }
        true
    }

    /// True when every processor that can still finish has executed `Done`
    /// (crashed processors never will; they shrink the target).
    pub fn all_finished(&self) -> bool {
        self.finished == self.live_finish_target()
    }

    /// The lock-grant order observed so far, as `(lock, grantee)` pairs —
    /// the synchronization order the reference interpreter replays.
    pub fn grant_log(&self) -> &[(LockId, NodeId)] {
        &self.grant_log
    }

    /// The final symbolic memory (home image overlaid with unflushed
    /// writes) and any write-write overlay conflicts. `None` unless built
    /// with [`Machine::with_value_tracking`].
    pub fn final_memory(&self) -> Option<(SymbolicMemory, Vec<(u64, usize)>)> {
        self.values.as_ref().map(|v| v.final_memory())
    }

    /// Liveness sweep for a drained machine: everything that should have
    /// completed but did not. Empty on a clean quiescent state. (A
    /// non-empty lazy-ext `delayed_writes` table is *legal* residue — a
    /// program may end without a trailing release — and is not reported.)
    pub fn stuck_states(&self) -> Vec<StuckState> {
        let mut out = Vec::new();
        for (p, node) in self.nodes.iter().enumerate() {
            // A crashed processor is expected never to finish; its fresh
            // (empty) node state contributes nothing below either.
            if node.status == ProcStatus::Crashed {
                continue;
            }
            if node.status != ProcStatus::Finished {
                out.push(StuckState::ProcessorStuck {
                    proc: p,
                    status: format!("{:?}", node.status),
                });
            }
            let mut out_lines: Vec<u64> = node.outstanding.keys().copied().collect();
            out_lines.sort_unstable();
            for line in out_lines {
                out.push(StuckState::TransactionUndrained { proc: p, line });
            }
            if node.wt_unacked != 0 || node.wbk_unacked != 0 {
                out.push(StuckState::UnackedFlushes {
                    proc: p,
                    write_throughs: node.wt_unacked,
                    write_backs: node.wbk_unacked,
                });
            }
            for e in node.cb.iter() {
                out.push(StuckState::CoalescingResidue { proc: p, line: e.line.0 });
            }
        }
        // A line homed at a crashed node keeps whatever directory state it
        // died with — there is no home left to drain it, and survivors got
        // degraded fills instead. That residue is the cost of the crash,
        // not a liveness bug.
        let home_crashed = |line: u64| {
            self.crash
                .as_deref()
                .is_some_and(|c| c.crashed.contains(self.home_of(lrc_sim::LineAddr(line))))
        };
        // LineMap iteration is already in ascending line order.
        for (line, e) in self.dir.iter().filter(|(_, e)| e.pending.is_some() || e.busy) {
            if home_crashed(line) {
                continue;
            }
            out.push(StuckState::DirectoryBusy {
                line,
                awaiting: e.pending.as_ref().map_or(0, |pc| pc.awaiting),
            });
        }
        for (line, q) in self.parked.iter() {
            if home_crashed(line) {
                continue;
            }
            out.push(StuckState::ParkedForever { line, requests: q.len() });
        }
        if let Some(xm) = self.xmit.as_deref() {
            for m in &xm.gave_up {
                out.push(StuckState::DeliveryAbandoned { msg: super::xmit::XmitState::render_msg(m) });
            }
        }
        out
    }

    /// A 64-bit fingerprint of the machine's *logical* state: everything
    /// that determines future protocol behavior, excluding times and
    /// statistics. Two states with equal fingerprints have the same set of
    /// reachable violations, so the checker prunes revisits. Unordered
    /// containers are folded in sorted order to keep the fingerprint
    /// iteration-order independent.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.protocol.hash(&mut h);
        self.finished.hash(&mut h);
        self.workload.state_token().hash(&mut h);

        for node in &self.nodes {
            node.status.hash(&mut h);
            node.deferred_op.hash(&mut h);
            node.step_scheduled.hash(&mut h);
            let mut lines: Vec<(u64, lrc_mem::LineState, u64)> =
                node.cache.iter().map(|l| (l.line.0, l.state, l.dirty_words)).collect();
            lines.sort_unstable_by_key(|&(l, ..)| l);
            lines.hash(&mut h);
            for e in node.wb.iter() {
                (e.line.0, e.words, e.ready, e.issued).hash(&mut h);
            }
            let mut cb: Vec<(u64, u64)> = node.cb.iter().map(|e| (e.line.0, e.words)).collect();
            cb.sort_unstable();
            cb.hash(&mut h);
            let mut outs: Vec<(u64, crate::node::Outstanding)> =
                node.outstanding.iter().map(|(&l, &o)| (l, o)).collect();
            outs.sort_unstable_by_key(|&(l, _)| l);
            outs.hash(&mut h);
            let mut pend: Vec<u64> = node.pending_invals.iter().copied().collect();
            pend.sort_unstable();
            pend.hash(&mut h);
            node.inval_all.hash(&mut h);
            let mut delayed: Vec<(u64, u64)> =
                node.delayed_writes.iter().map(|(&l, &w)| (l, w)).collect();
            delayed.sort_unstable();
            delayed.hash(&mut h);
            (node.wt_unacked, node.wbk_unacked).hash(&mut h);
            let mut forwards: Vec<(u64, &crate::msg::Msg)> =
                node.parked_forwards.iter().map(|(&l, m)| (l, m)).collect();
            forwards.sort_unstable_by_key(|&(l, _)| l);
            for (l, m) in forwards {
                (l, m).hash(&mut h);
            }
            node.locks.snapshot().hash(&mut h);
            node.barriers.snapshot().hash(&mut h);
        }

        // LineMap iteration is already in ascending line order, so these
        // folds are iteration-order independent by construction.
        for (l, e) in self.dir.iter() {
            (l, e.sharers(), e.writers(), e.notified(), e.busy, e.overflow).hash(&mut h);
            match &e.pending {
                Some(pc) => (pc.awaiting, &pc.waiters).hash(&mut h),
                None => u32::MAX.hash(&mut h),
            }
        }

        for (l, q) in self.parked.iter() {
            l.hash(&mut h);
            for (m, _) in q {
                m.hash(&mut h);
            }
        }

        for (l, e) in self.busy_info.iter() {
            (l, e.owner, e.requester, e.for_write, e.served).hash(&mut h);
        }

        // NACK budgets spent per line (finite directory request slots). An
        // empty map folds nothing, so unbounded runs are unaffected.
        for (l, &n) in self.nacks_given.iter() {
            (l, n).hash(&mut h);
        }
        // The deterministic NACK choice point: until the `nack_nth`-th busy
        // encounter has happened, states differ by how close they are to the
        // trigger; afterwards every count is equivalent (clamp merges them).
        if let Some(n) = self.nack_nth {
            self.park_seq.min(n + 1).hash(&mut h);
        }

        // Pending events, in firing order, without their times.
        for ev in self.queue.pending_events() {
            ev.hash(&mut h);
        }

        // Link-layer state (fault-injection runs only). HashMap/HashSet
        // folds are sorted for iteration-order independence.
        if let Some(xm) = self.xmit.as_deref() {
            xm.next_seq.hash(&mut h);
            let mut inflight: Vec<(u64, crate::msg::Msg, u32)> =
                xm.in_flight.iter().map(|(&s, i)| (s, i.msg, i.attempts)).collect();
            inflight.sort_unstable_by_key(|&(s, ..)| s);
            inflight.hash(&mut h);
            let mut seen: Vec<u64> = xm.seen.iter().copied().collect();
            seen.sort_unstable();
            seen.hash(&mut h);
            xm.gave_up.hash(&mut h);
        }

        // Crash-subsystem state (armed runs only): deaths, per-observer
        // suspicions, and the unacked-credit matrices all steer future
        // behavior. Lease times (`last_heard`) are wall-clock and excluded,
        // like every other time. With `crash_nth` armed, states additionally
        // differ by how close the handled-event counter is to the trigger
        // (clamped past it, mirroring `nack_nth`).
        if let Some(c) = self.crash.as_deref() {
            c.crashed.hash(&mut h);
            c.crashed_unfinished.hash(&mut h);
            c.suspected.hash(&mut h);
            c.wt_to.hash(&mut h);
            c.wbk_to.hash(&mut h);
            if let Some((_, n)) = c.plan.crash_nth {
                self.handled.min(n + 1).hash(&mut h);
            }
        }

        if let Some(v) = self.values.as_ref() {
            v.hash_into(&mut h);
        }
        // Detector state must distinguish otherwise-equal machine states:
        // pruning a state whose vector clocks or word metadata differ could
        // silently merge a racy path into a clean one.
        if let Some(r) = self.race.as_ref() {
            r.hash_into(&mut h);
        }
        h.finish()
    }
}

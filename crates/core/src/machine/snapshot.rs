//! Consistent checkpoint/restore for live machines.
//!
//! [`MachineSnapshot::capture`] serializes every simulation-relevant piece
//! of a paused [`Machine`] — the event queue with its deterministic tie
//! keys, per-node caches and write buffers, the directory, link-layer and
//! network state, resource clocks, fault-injector RNG streams, the race
//! detector, and the value tracker — into a versioned `lrc-json` document.
//! [`MachineSnapshot::restore`] rebuilds a machine that, driven forward,
//! produces a run **bit-identical** to the uninterrupted one (the state
//! fingerprint and every statistic agree at every future cycle).
//!
//! Design rules that make that guarantee hold:
//!
//! * **u64s travel as decimal strings.** `lrc-json` numbers are `f64`,
//!   exact only to 2^53; event tie keys (node index in the top 16 bits),
//!   dirty-word masks, RNG streams, and `u64::MAX` sentinels all exceed
//!   that. Small ids and counts (processor ids, queue depths) stay numeric.
//! * **Deterministic field order.** Capture emits objects in a fixed field
//!   order and sorts every hash-map table, so serialize → parse →
//!   re-serialize is byte-identical, and capturing a restored machine
//!   yields byte-identical JSON to the original capture.
//! * **Workloads restore by replay, not by serialization.** The snapshot
//!   stores the workload's name and the per-processor count of `next_op`
//!   calls consumed; restore fast-forwards a caller-supplied fresh instance
//!   by those counts, which the determinism contract of
//!   [`Workload::next_op`] makes exact.
//! * **Refuse what cannot round-trip.** Capture returns
//!   [`SnapshotError::Unsupported`] for machines carrying state v1 does not
//!   serialize (trace sinks, latency probes, samplers, miss classification,
//!   checker-driven exploration, injected protocol bugs). The flight
//!   recorder is the one observer allowed: its ring contents are not saved
//!   (they never affect simulation), and restore re-arms a default-depth
//!   recorder that refills within a few thousand events.
//!
//! Sharded (conservative-PDES) runs snapshot at window edges, where every
//! cross-shard channel is provably empty — see `machine::parallel` for the
//! consistent-cut argument; each shard then captures here independently.

use super::obs::DEFAULT_FLIGHT_CAP;
use super::values::ValueTracker;
use super::xmit::{InFlight, XmitCounters, XmitState};
use super::{Event, Fault, ForwardEp, Machine};
use crate::directory::{nodes_in, AckCollection, DirEntry, NodeSet};
use crate::msg::{Msg, MsgKind, WriteGrant};
use crate::node::{Outstanding, PendingSync, ProcStatus};
use lrc_json::{FromJson, ToJson, Value};
use lrc_mem::{CbEntry, LineState, WbEntry};
use lrc_mesh::{
    CrashPlan, FaultCounters, FaultPlan, FaultRates, InjectorState, MsgClass, NetworkState,
    NiSnapshot,
};
use lrc_race::{
    BarrierState as RaceBarrierState, RaceDetector, RaceDetectorState, ReadState as RaceReadState,
    WordState,
};
use lrc_sim::refint::WriteId;
use lrc_sim::{
    Cycle, EventQueue, LineAddr, MachineConfig, MachineStats, Op, ProcId, Protocol, RaceSite,
    StallKind, Workload,
};
use lrc_trace::FlightRecorder;
use std::collections::{BTreeMap, VecDeque};

/// Version stamp written into every snapshot. Bump on any schema change;
/// [`MachineSnapshot::parse`] rejects unknown versions with a typed error.
///
/// History:
/// * **v1** — initial format.
/// * **v2** — adds the crash-stop fault subsystem: a `crash` section in the
///   fault plan and at the document root, the `from` multiset on pending
///   ack collections, the `Crashed` processor status, the `Heartbeat`
///   message kind, and the `LeaseTick`/`CrashNode` events. Strictly
///   additive: v1 documents still load, with every new field defaulted to
///   its crashes-off value.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Oldest version this build still reads. Documents older than this (or
/// newer than [`SNAPSHOT_VERSION`]) fail with
/// [`SnapshotError::UnknownVersion`].
pub const MIN_SNAPSHOT_VERSION: u64 = 1;

/// Why a capture, parse, or restore failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The machine carries state this snapshot version does not serialize
    /// (trace sinks, probes, samplers, classification, checker-driven
    /// exploration), or the restore inputs do not match the snapshot
    /// (wrong workload, wrong processor count).
    Unsupported(String),
    /// The document's version stamp is not one this build understands —
    /// a snapshot from a future (or mangled) build.
    UnknownVersion {
        /// The version the document claims.
        found: u64,
    },
    /// The document is not a structurally valid snapshot: truncated JSON,
    /// missing or mistyped fields, or values violating state invariants.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Unsupported(what) => {
                write!(f, "snapshot unsupported: {what}")
            }
            SnapshotError::UnknownVersion { found } => write!(
                f,
                "unknown snapshot version {found} (this build reads versions \
                 {MIN_SNAPSHOT_VERSION} through {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

type R<T> = Result<T, SnapshotError>;

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

fn unsupported(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Unsupported(msg.into())
}

// ---------------------------------------------------------------- encoding
// `su` renders a u64 as a decimal string (exact at any magnitude); `nu`
// renders a small integer numerically. Rule: anything that can carry high
// bits (addresses, masks, tie keys, cycles, seqs, RNG state) goes `su`;
// bounded ids and counts go `nu`.

fn su(x: u64) -> Value {
    Value::Str(x.to_string())
}

fn nu(x: u64) -> Value {
    debug_assert!(x < (1 << 53), "numeric JSON field would lose precision");
    Value::Num(x as f64)
}

fn obj(fields: Vec<(&'static str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn tag(t: &str) -> (&'static str, Value) {
    ("t", Value::Str(t.to_string()))
}

fn enc_node_list(set: NodeSet) -> Value {
    Value::Array(nodes_in(set).map(|n| nu(n as u64)).collect())
}

fn enc_msg(m: &Msg) -> Value {
    obj(vec![
        ("src", nu(m.src as u64)),
        ("dst", nu(m.dst as u64)),
        ("kind", enc_kind(&m.kind)),
    ])
}

fn enc_kind(k: &MsgKind) -> Value {
    use MsgKind::*;
    let mut f: Vec<(&'static str, Value)> = vec![tag(k.name())];
    match *k {
        ReadReq { line }
        | WriteAck { line }
        | WriteThroughAck { line }
        | WriteBackAck { line }
        | Invalidate { line }
        | WriteNotice { line }
        | InvAck { line }
        | NoticeAck { line } => f.push(("line", su(line.0))),
        WriteReq { line, had_copy, words } => {
            f.push(("line", su(line.0)));
            f.push(("had_copy", Value::Bool(had_copy)));
            f.push(("words", su(words)));
        }
        WriteThrough { line, words } | WriteBack { line, words } => {
            f.push(("line", su(line.0)));
            f.push(("words", su(words)));
        }
        EvictNotify { line, was_writer } => {
            f.push(("line", su(line.0)));
            f.push(("was_writer", Value::Bool(was_writer)));
        }
        ReadReply { line, weak } => {
            f.push(("line", su(line.0)));
            f.push(("weak", Value::Bool(weak)));
        }
        WriteReply { line, grant, with_data, weak } => {
            f.push(("line", su(line.0)));
            let g = match grant {
                WriteGrant::Immediate => "immediate",
                WriteGrant::Pending => "pending",
            };
            f.push(("grant", Value::Str(g.to_string())));
            f.push(("with_data", Value::Bool(with_data)));
            f.push(("weak", Value::Bool(weak)));
        }
        Forward { line, requester, for_write, ep }
        | ForwardNack { line, requester, for_write, ep } => {
            f.push(("line", su(line.0)));
            f.push(("req", nu(requester as u64)));
            f.push(("for_write", Value::Bool(for_write)));
            f.push(("ep", su(ep)));
        }
        OwnerData { line, for_write } => {
            f.push(("line", su(line.0)));
            f.push(("for_write", Value::Bool(for_write)));
        }
        CopyBack { line, demoted_to_shared, ep } => {
            f.push(("line", su(line.0)));
            f.push(("demoted", Value::Bool(demoted_to_shared)));
            f.push(("ep", su(ep)));
        }
        LockAcq { lock } | LockGrant { lock } | LockRel { lock } => {
            f.push(("lock", nu(lock as u64)));
        }
        BarrierArrive { bar } | BarrierRelease { bar } => f.push(("bar", nu(bar as u64))),
        BusyNack { line, for_write, had_copy, words, attempt } => {
            f.push(("line", su(line.0)));
            f.push(("for_write", Value::Bool(for_write)));
            f.push(("had_copy", Value::Bool(had_copy)));
            f.push(("words", su(words)));
            f.push(("attempt", nu(attempt as u64)));
        }
        ForwardCancel { line, ep } => {
            f.push(("line", su(line.0)));
            f.push(("ep", su(ep)));
        }
        Heartbeat => {}
    }
    obj(f)
}

fn enc_event(ev: &Event) -> R<Value> {
    Ok(match ev {
        Event::ProcStep(p) => obj(vec![tag("step"), ("p", nu(*p as u64))]),
        Event::Msg(m) => obj(vec![tag("msg"), ("msg", enc_msg(m))]),
        Event::CbFlush(p, line) => {
            obj(vec![tag("cb"), ("p", nu(*p as u64)), ("line", su(line.0))])
        }
        Event::XMsg { msg, seq, corrupt } => obj(vec![
            tag("xmsg"),
            ("msg", enc_msg(msg)),
            ("seq", su(*seq)),
            ("corrupt", Value::Bool(*corrupt)),
        ]),
        Event::LinkCtl { seq, ack } => {
            obj(vec![tag("linkctl"), ("seq", su(*seq)), ("ack", Value::Bool(*ack))])
        }
        Event::RetryTimer { seq } => obj(vec![tag("retry"), ("seq", su(*seq))]),
        Event::NiRetry { msg, attempts } => obj(vec![
            tag("ni"),
            ("msg", enc_msg(msg)),
            ("attempts", nu(*attempts as u64)),
        ]),
        Event::NackRetry { msg } => obj(vec![tag("nack"), ("msg", enc_msg(msg))]),
        // Sample events exist only while a sampler is armed, which capture
        // refuses before it walks the queue.
        Event::Sample => return Err(unsupported("pending metrics-sampler tick")),
        Event::LeaseTick => obj(vec![tag("lease")]),
        Event::CrashNode { victim } => {
            obj(vec![tag("crashnode"), ("victim", nu(*victim as u64))])
        }
    })
}

fn enc_op(op: &Op) -> Value {
    match *op {
        Op::Compute(n) => obj(vec![tag("compute"), ("n", nu(n as u64))]),
        Op::Read(a) => obj(vec![tag("read"), ("a", su(a))]),
        Op::Write(a) => obj(vec![tag("write"), ("a", su(a))]),
        Op::Acquire(l) => obj(vec![tag("acquire"), ("lock", nu(l as u64))]),
        Op::Release(l) => obj(vec![tag("release"), ("lock", nu(l as u64))]),
        Op::Barrier(b) => obj(vec![tag("barrier"), ("bar", nu(b as u64))]),
        Op::Fence => obj(vec![tag("fence")]),
        Op::Done => obj(vec![tag("done")]),
    }
}

fn enc_pending_sync(s: &PendingSync) -> Value {
    match *s {
        PendingSync::LockRelease(l) => obj(vec![tag("lockrel"), ("lock", nu(l as u64))]),
        PendingSync::Barrier(b) => obj(vec![tag("barrier"), ("bar", nu(b as u64))]),
    }
}

fn enc_status(s: &ProcStatus) -> Value {
    match *s {
        ProcStatus::Running => obj(vec![tag("running")]),
        ProcStatus::StalledRead(line) => obj(vec![tag("sread"), ("line", su(line.0))]),
        ProcStatus::StalledWriteFull => obj(vec![tag("swfull")]),
        ProcStatus::StalledWrite(line) => obj(vec![tag("swrite"), ("line", su(line.0))]),
        ProcStatus::Releasing(ref ps) => obj(vec![tag("releasing"), ("sync", enc_pending_sync(ps))]),
        ProcStatus::WaitingLock(l) => obj(vec![tag("wlock"), ("lock", nu(l as u64))]),
        ProcStatus::InBarrier(b) => obj(vec![tag("inbar"), ("bar", nu(b as u64))]),
        ProcStatus::Finished => obj(vec![tag("finished")]),
        ProcStatus::Crashed => obj(vec![tag("crashed")]),
    }
}

fn stall_kind_name(k: StallKind) -> &'static str {
    match k {
        StallKind::Cpu => "cpu",
        StallKind::Read => "read",
        StallKind::Write => "write",
        StallKind::Sync => "sync",
    }
}

fn line_state_name(s: LineState) -> &'static str {
    match s {
        LineState::Invalid => "inv",
        LineState::ReadOnly => "ro",
        LineState::ReadWrite => "rw",
    }
}

fn enc_site(s: &RaceSite) -> Value {
    s.to_json()
}

fn enc_fault_plan(plan: &FaultPlan) -> Value {
    let rates = plan
        .rates
        .iter()
        .map(|r| {
            obj(vec![
                ("drop", Value::Num(r.drop)),
                ("duplicate", Value::Num(r.duplicate)),
                ("delay", Value::Num(r.delay)),
                ("corrupt", Value::Num(r.corrupt)),
            ])
        })
        .collect();
    let drop_nth = match plan.drop_nth {
        None => Value::Null,
        Some((class, n)) => Value::Array(vec![nu(class.index() as u64), su(n)]),
    };
    let crash = match &plan.crash {
        None => Value::Null,
        Some(cp) => {
            let victims = cp
                .victims
                .iter()
                .map(|&(n, at)| Value::Array(vec![nu(n as u64), su(at)]))
                .collect();
            let crash_nth = match cp.crash_nth {
                None => Value::Null,
                Some((n, k)) => Value::Array(vec![nu(n as u64), su(k)]),
            };
            obj(vec![
                ("victims", Value::Array(victims)),
                ("crash_nth", crash_nth),
                ("heartbeat_every", su(cp.heartbeat_every)),
                ("lease_timeout", su(cp.lease_timeout)),
            ])
        }
    };
    obj(vec![
        ("seed", su(plan.seed)),
        ("rates", Value::Array(rates)),
        ("delay_cycles", su(plan.delay_cycles)),
        ("drop_nth", drop_nth),
        ("retry_timeout", su(plan.retry_timeout)),
        ("max_retries", nu(plan.max_retries as u64)),
        ("crash", crash),
    ])
}

fn enc_fault_counters(c: &FaultCounters) -> Value {
    obj(vec![
        ("dropped", su(c.dropped)),
        ("duplicated", su(c.duplicated)),
        ("delayed", su(c.delayed)),
        ("corrupted", su(c.corrupted)),
    ])
}

fn enc_net_state(st: &NetworkState) -> Value {
    let ni = match &st.ni {
        None => Value::Null,
        Some(ni) => obj(vec![
            (
                "ingress",
                Value::Array(
                    ni.ingress
                        .iter()
                        .map(|q| Value::Array(q.iter().map(|&t| su(t)).collect()))
                        .collect(),
                ),
            ),
            (
                "egress",
                Value::Array(
                    ni.egress
                        .iter()
                        .map(|q| Value::Array(q.iter().map(|&t| su(t)).collect()))
                        .collect(),
                ),
            ),
            ("peak_ingress", nu(ni.peak_ingress as u64)),
            ("peak_egress", nu(ni.peak_egress as u64)),
        ]),
    };
    let injector = match &st.injector {
        None => Value::Null,
        Some(inj) => obj(vec![
            ("streams", Value::Array(inj.streams.iter().map(|&s| su(s)).collect())),
            ("sent", Value::Array(inj.sent.iter().map(|&s| su(s)).collect())),
            ("counters", enc_fault_counters(&inj.counters)),
        ]),
    };
    obj(vec![
        ("send_free", Value::Array(st.send_free.iter().map(|&t| su(t)).collect())),
        ("msgs", su(st.msgs)),
        ("bytes_total", su(st.bytes_total)),
        ("ni", ni),
        ("injector", injector),
    ])
}

fn enc_xmit(x: &XmitState) -> Value {
    let mut in_flight: Vec<(u64, InFlight)> =
        x.in_flight.iter().map(|(&s, &f)| (s, f)).collect();
    in_flight.sort_unstable_by_key(|&(s, _)| s);
    let mut seen: Vec<u64> = x.seen.iter().copied().collect();
    seen.sort_unstable();
    let c = &x.counters;
    obj(vec![
        ("next_seq", su(x.next_seq)),
        (
            "in_flight",
            Value::Array(
                in_flight
                    .into_iter()
                    .map(|(s, f)| {
                        obj(vec![
                            ("seq", su(s)),
                            ("msg", enc_msg(&f.msg)),
                            ("attempts", nu(f.attempts as u64)),
                            ("deadline", su(f.next_deadline)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("seen", Value::Array(seen.into_iter().map(su).collect())),
        ("gave_up", Value::Array(x.gave_up.iter().map(enc_msg).collect())),
        (
            "counters",
            obj(vec![
                ("link_nacks", su(c.link_nacks)),
                ("retries", su(c.retries)),
                ("timeouts", su(c.timeouts)),
                ("retries_exhausted", su(c.retries_exhausted)),
                ("dup_suppressed", su(c.dup_suppressed)),
                ("link_msgs", su(c.link_msgs)),
            ]),
        ),
    ])
}

fn enc_values(vt: &ValueTracker) -> Value {
    let (seq, home, unflushed) = vt.save_parts();
    let home_a = home
        .iter()
        .map(|(&(line, word), id)| {
            Value::Array(vec![su(line), nu(word as u64), nu(id.proc as u64), su(id.seq)])
        })
        .collect();
    let unflushed_a = unflushed
        .iter()
        .map(|(&(p, line), words)| {
            obj(vec![
                ("proc", nu(p as u64)),
                ("line", su(line)),
                (
                    "words",
                    Value::Array(
                        words
                            .iter()
                            .map(|(&w, id)| {
                                Value::Array(vec![nu(w as u64), nu(id.proc as u64), su(id.seq)])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("seq", Value::Array(seq.iter().map(|&s| su(s)).collect())),
        ("home", Value::Array(home_a)),
        ("unflushed", Value::Array(unflushed_a)),
    ])
}

fn enc_crash_ctx(c: &super::crash::CrashCtx) -> Value {
    let matrix_su = |m: &[Vec<Cycle>]| {
        Value::Array(
            m.iter()
                .map(|row| Value::Array(row.iter().map(|&t| su(t)).collect()))
                .collect(),
        )
    };
    let matrix_nu = |m: &[Vec<u32>]| {
        Value::Array(
            m.iter()
                .map(|row| Value::Array(row.iter().map(|&x| nu(x as u64)).collect()))
                .collect(),
        )
    };
    obj(vec![
        ("crashed", enc_node_list(c.crashed)),
        ("crashed_unfinished", nu(c.crashed_unfinished as u64)),
        (
            "suspected",
            Value::Array(c.suspected.iter().map(|&s| enc_node_list(s)).collect()),
        ),
        ("last_heard", matrix_su(&c.last_heard)),
        ("wt_to", matrix_nu(&c.wt_to)),
        ("wbk_to", matrix_nu(&c.wbk_to)),
    ])
}

fn dec_crash_ctx(v: &Value, c: &mut super::crash::CrashCtx, np: usize) -> R<()> {
    let rows = |k: &str| -> R<&Vec<Value>> {
        let rows = d_arr(v, k)?;
        if rows.len() != np {
            return Err(corrupt(format!("crash.{k}: expected {np} rows, got {}", rows.len())));
        }
        Ok(rows)
    };
    let row = |rv: &Value, k: &str| -> R<Vec<Value>> {
        let r = rv
            .as_array()
            .ok_or_else(|| corrupt(format!("crash.{k}: expected row array")))?;
        if r.len() != np {
            return Err(corrupt(format!("crash.{k}: expected {np} columns, got {}", r.len())));
        }
        Ok(r.clone())
    };
    c.crashed = d_node_set(v, "crashed", np)?;
    c.crashed_unfinished = d_usize(v, "crashed_unfinished")?;
    c.suspected = rows("suspected")?
        .iter()
        .map(|rv| {
            rv.as_array()
                .ok_or_else(|| corrupt("crash.suspected: expected array"))?
                .iter()
                .map(|e| node_val(e, np, "crash.suspected"))
                .collect::<R<Vec<usize>>>()
                .map(|nodes| nodes.into_iter().collect())
        })
        .collect::<R<Vec<NodeSet>>>()?;
    c.last_heard = rows("last_heard")?
        .iter()
        .map(|rv| row(rv, "last_heard")?.iter().map(|e| as_su(e, "crash.last_heard")).collect())
        .collect::<R<Vec<Vec<Cycle>>>>()?;
    let credit = |k: &'static str| -> R<Vec<Vec<u32>>> {
        rows(k)?
            .iter()
            .map(|rv| {
                row(rv, k)?
                    .iter()
                    .map(|e| {
                        let x = e
                            .as_u64()
                            .ok_or_else(|| corrupt(format!("crash.{k}: expected integer")))?;
                        u32::try_from(x)
                            .map_err(|_| corrupt(format!("crash.{k}: {x} exceeds u32")))
                    })
                    .collect()
            })
            .collect()
    };
    c.wt_to = credit("wt_to")?;
    c.wbk_to = credit("wbk_to")?;
    Ok(())
}

fn enc_race(st: &RaceDetectorState) -> Value {
    let clocks_a = |cs: &[u64]| Value::Array(cs.iter().map(|&c| su(c)).collect());
    let words = st
        .words
        .iter()
        .map(|w| {
            let write = match &w.write {
                None => Value::Null,
                Some((p, c, site)) => {
                    Value::Array(vec![nu(*p as u64), su(*c), enc_site(site)])
                }
            };
            let read = match &w.read {
                RaceReadState::None => obj(vec![tag("none")]),
                RaceReadState::Epoch(p, c, site) => obj(vec![
                    tag("epoch"),
                    ("proc", nu(*p as u64)),
                    ("clock", su(*c)),
                    ("site", enc_site(site)),
                ]),
                RaceReadState::Vector(cs, sites) => obj(vec![
                    tag("vector"),
                    ("clocks", clocks_a(cs)),
                    ("sites", Value::Array(sites.iter().map(enc_site).collect())),
                ]),
            };
            obj(vec![
                ("addr", su(w.addr)),
                ("write", write),
                ("read", read),
                ("racy", Value::Bool(w.racy)),
            ])
        })
        .collect();
    let barriers = st
        .barriers
        .iter()
        .map(|b| {
            obj(vec![
                ("id", nu(b.id as u64)),
                ("gather", clocks_a(&b.gather)),
                ("arrivals", nu(b.arrivals as u64)),
                ("completed", clocks_a(&b.completed)),
            ])
        })
        .collect();
    obj(vec![
        ("num_procs", nu(st.num_procs as u64)),
        ("word_size", su(st.word_size)),
        ("clocks", Value::Array(st.clocks.iter().map(|c| clocks_a(c)).collect())),
        ("refs", clocks_a(&st.refs)),
        (
            "locks",
            Value::Array(
                st.locks
                    .iter()
                    .map(|(l, c)| Value::Array(vec![nu(*l as u64), clocks_a(c)]))
                    .collect(),
            ),
        ),
        ("barriers", Value::Array(barriers)),
        ("words", Value::Array(words)),
        ("stats", st.stats.to_json()),
    ])
}

/// A captured machine state: a versioned JSON document that restores to a
/// machine whose continued run is bit-identical to the uninterrupted one.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    root: Value,
}

impl MachineSnapshot {
    /// Capture `m`'s complete simulation state. `m` must be paused between
    /// events (as [`Machine::run_until`] leaves it). Returns
    /// [`SnapshotError::Unsupported`] when the machine carries state v1
    /// does not serialize — see the module docs for the refusal set.
    pub fn capture(m: &Machine) -> R<Self> {
        if m.classifier.is_some() {
            return Err(unsupported("miss classification is enabled"));
        }
        if let Some(o) = m.obs.as_deref() {
            if o.sink.is_some() {
                return Err(unsupported("a structured trace sink is attached"));
            }
            if o.probe.is_some() {
                return Err(unsupported("latency probes are enabled"));
            }
            if o.sampler.is_some() {
                return Err(unsupported("the metrics sampler is enabled"));
            }
        }
        if m.choice_driven {
            return Err(unsupported("machine is driven by the model checker"));
        }
        if m.nack_nth.is_some() {
            return Err(unsupported("a nack_nth checker choice point is set"));
        }
        if m.trace_line.is_some() {
            return Err(unsupported("trace_line debugging is enabled"));
        }
        if m.fault != Fault::None {
            return Err(unsupported("an injected protocol bug is active"));
        }
        if let Some(sh) = m.shard.as_deref() {
            if !sh.outbox.is_empty() {
                return Err(unsupported(
                    "shard outbox is not empty (capture only at window edges)",
                ));
            }
        }

        let np = m.cfg.num_procs;
        // A crash-only plan never activates the link-layer injector, so the
        // network holds no plan; synthesize one around the crash plan the
        // machine kept, or restore could not re-arm the subsystem.
        let fault_plan = match (m.net.fault_plan(), m.crash.as_deref()) {
            (Some(plan), _) => enc_fault_plan(plan),
            (None, Some(c)) => {
                enc_fault_plan(&FaultPlan::off(0).with_crash(c.plan.clone()))
            }
            (None, None) => Value::Null,
        };

        let mut events = Vec::with_capacity(m.queue.len());
        for (at, key, ev) in m.queue.pending_entries() {
            events.push(obj(vec![("at", su(at)), ("key", su(key)), ("ev", enc_event(ev)?)]));
        }
        let queue = obj(vec![
            ("peak", nu(m.queue.peak_len() as u64)),
            ("events", Value::Array(events)),
        ]);

        let nodes = (0..np).map(|p| Self::capture_node(m, p)).collect();

        let dir = m
            .dir
            .iter()
            .map(|(line, e)| {
                let pending = match &e.pending {
                    None => Value::Null,
                    Some(ac) => obj(vec![
                        ("awaiting", nu(ac.awaiting as u64)),
                        (
                            "waiters",
                            Value::Array(ac.waiters.iter().map(|&w| nu(w as u64)).collect()),
                        ),
                        (
                            "from",
                            Value::Array(ac.from.iter().map(|&w| nu(w as u64)).collect()),
                        ),
                    ]),
                };
                obj(vec![
                    ("line", su(line)),
                    ("sharers", enc_node_list(e.sharers())),
                    ("writers", enc_node_list(e.writers())),
                    ("notified", enc_node_list(e.notified())),
                    ("pending", pending),
                    ("busy", Value::Bool(e.busy)),
                    ("overflow", Value::Bool(e.overflow)),
                ])
            })
            .collect();

        let parked = m
            .parked
            .iter()
            .filter(|(_, dq)| !dq.is_empty())
            .map(|(line, dq)| {
                obj(vec![
                    ("line", su(line)),
                    (
                        "msgs",
                        Value::Array(
                            dq.iter()
                                .map(|(msg, at)| obj(vec![("msg", enc_msg(msg)), ("at", su(*at))]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();

        let page_home = m
            .page_home
            .iter()
            .map(|(page, &home)| Value::Array(vec![su(page), nu(home as u64)]))
            .collect();

        let busy_info = m
            .busy_info
            .iter()
            .map(|(line, ep)| {
                obj(vec![
                    ("line", su(line)),
                    ("id", su(ep.id)),
                    ("owner", nu(ep.owner as u64)),
                    ("req", nu(ep.requester as u64)),
                    ("for_write", Value::Bool(ep.for_write)),
                    ("served", Value::Bool(ep.served)),
                ])
            })
            .collect();

        let nacks_given = m
            .nacks_given
            .iter()
            .map(|(line, &n)| Value::Array(vec![su(line), nu(n as u64)]))
            .collect();

        let last_ni_reject = match m.last_ni_reject {
            None => Value::Null,
            Some((node, occ, cap)) => {
                Value::Array(vec![nu(node as u64), nu(occ as u64), nu(cap as u64)])
            }
        };

        let grant_log = m
            .grant_log
            .iter()
            .map(|&(l, n)| Value::Array(vec![nu(l as u64), nu(n as u64)]))
            .collect();

        let values = match &m.values {
            None => Value::Null,
            Some(vt) => enc_values(vt),
        };
        let race = match m.race.as_deref() {
            None => Value::Null,
            Some(r) => enc_race(&r.save_state()),
        };

        let recorder_armed =
            m.obs.as_deref().map(|o| o.recorder.is_some()).unwrap_or(false);
        let crash = match m.crash.as_deref() {
            None => Value::Null,
            Some(c) => enc_crash_ctx(c),
        };

        let root = obj(vec![
            ("version", nu(SNAPSHOT_VERSION)),
            ("protocol", m.protocol.to_json()),
            ("config", m.cfg.to_json()),
            ("fault_plan", fault_plan),
            (
                "workload",
                obj(vec![
                    ("name", Value::Str(m.workload.name().to_string())),
                    (
                        "ops_consumed",
                        Value::Array(m.ops_consumed.iter().map(|&c| su(c)).collect()),
                    ),
                ]),
            ),
            ("now", su(m.queue.now())),
            ("handled", su(m.handled)),
            ("finished", nu(m.finished as u64)),
            ("max_cycles", su(m.max_cycles)),
            ("check_every", su(m.check_every)),
            ("watchdog", m.watchdog.map(su).unwrap_or(Value::Null)),
            ("forward_seq", su(m.forward_seq)),
            ("park_seq", su(m.park_seq)),
            ("recorder_armed", Value::Bool(recorder_armed)),
            ("ev_seq", Value::Array(m.ev_seq.iter().map(|&s| su(s)).collect())),
            ("queue", queue),
            ("nodes", Value::Array(nodes)),
            ("dir", Value::Array(dir)),
            ("parked", Value::Array(parked)),
            ("page_home", Value::Array(page_home)),
            ("busy_info", Value::Array(busy_info)),
            ("nacks_given", Value::Array(nacks_given)),
            ("pending_ni_retries", nu(m.pending_ni_retries as u64)),
            ("last_ni_reject", last_ni_reject),
            ("net", enc_net_state(&m.net.save_state())),
            (
                "xmit",
                match m.xmit.as_deref() {
                    None => Value::Null,
                    Some(x) => enc_xmit(x),
                },
            ),
            ("grant_log", Value::Array(grant_log)),
            ("values", values),
            ("race", race),
            ("crash", crash),
            ("stats", m.stats.to_json()),
        ]);
        Ok(MachineSnapshot { root })
    }

    fn capture_node(m: &Machine, p: usize) -> Value {
        let n = &m.nodes[p];
        let (slots, tick) = n.cache.save_slots();
        let cache_slots = slots
            .iter()
            .map(|&(line, state, dirty, stamp)| {
                Value::Array(vec![
                    su(line.0),
                    Value::Str(line_state_name(state).to_string()),
                    su(dirty),
                    su(stamp),
                ])
            })
            .collect();
        let wb = n
            .wb
            .iter()
            .map(|e| {
                Value::Array(vec![
                    su(e.line.0),
                    su(e.words),
                    Value::Bool(e.ready),
                    Value::Bool(e.issued),
                ])
            })
            .collect();
        let cb = n
            .cb
            .iter()
            .map(|e| Value::Array(vec![su(e.line.0), su(e.words)]))
            .collect();

        let mut outstanding: Vec<(u64, Outstanding)> =
            n.outstanding.iter().map(|(&l, &o)| (l, o)).collect();
        outstanding.sort_unstable_by_key(|&(l, _)| l);
        let outstanding = outstanding
            .into_iter()
            .map(|(l, o)| {
                obj(vec![
                    ("line", su(l)),
                    ("waiting_data", Value::Bool(o.waiting_data)),
                    ("waiting_ack", Value::Bool(o.waiting_ack)),
                    ("early_ack", Value::Bool(o.early_ack)),
                    ("resume_proc", Value::Bool(o.resume_proc)),
                    ("retire_wb", Value::Bool(o.retire_wb)),
                    ("apply_words", su(o.apply_words)),
                    ("stale_on_fill", Value::Bool(o.stale_on_fill)),
                ])
            })
            .collect();

        let mut pending_invals: Vec<u64> = n.pending_invals.iter().copied().collect();
        pending_invals.sort_unstable();
        let mut delayed: Vec<(u64, u64)> =
            n.delayed_writes.iter().map(|(&l, &w)| (l, w)).collect();
        delayed.sort_unstable_by_key(|&(l, _)| l);
        let mut parked_fw: Vec<(u64, Msg)> =
            n.parked_forwards.iter().map(|(&l, &msg)| (l, msg)).collect();
        parked_fw.sort_unstable_by_key(|&(l, _)| l);

        let locks = n
            .locks
            .save_exact()
            .into_iter()
            .map(|(l, holder, queue)| {
                obj(vec![
                    ("lock", nu(l as u64)),
                    ("holder", holder.map(|h| nu(h as u64)).unwrap_or(Value::Null)),
                    ("queue", Value::Array(queue.into_iter().map(|q| nu(q as u64)).collect())),
                ])
            })
            .collect();
        let barriers = n
            .barriers
            .save_exact()
            .into_iter()
            .map(|(b, arrived)| {
                obj(vec![
                    ("bar", nu(b as u64)),
                    (
                        "arrived",
                        Value::Array(arrived.into_iter().map(|a| nu(a as u64)).collect()),
                    ),
                ])
            })
            .collect();

        obj(vec![
            ("status", enc_status(&n.status)),
            ("stall_start", su(n.stall_start)),
            ("stall_kind", Value::Str(stall_kind_name(n.stall_kind).to_string())),
            ("deferred_op", n.deferred_op.as_ref().map(enc_op).unwrap_or(Value::Null)),
            ("step_scheduled", Value::Bool(n.step_scheduled)),
            ("cache", obj(vec![("slots", Value::Array(cache_slots)), ("tick", su(tick))])),
            ("wb", Value::Array(wb)),
            ("cb", Value::Array(cb)),
            ("mem", Value::Array(vec![su(n.mem.free_at()), su(n.mem.busy_cycles()), su(n.mem.accesses())])),
            ("bus", Value::Array(vec![su(n.bus.free_at()), su(n.bus.busy_cycles())])),
            ("pp", Value::Array(vec![su(n.pp.free_at()), su(n.pp.busy_cycles())])),
            ("outstanding", Value::Array(outstanding)),
            ("pending_invals", Value::Array(pending_invals.into_iter().map(su).collect())),
            ("inval_all", Value::Bool(n.inval_all)),
            (
                "delayed_writes",
                Value::Array(
                    delayed
                        .into_iter()
                        .map(|(l, w)| Value::Array(vec![su(l), su(w)]))
                        .collect(),
                ),
            ),
            ("wt_unacked", nu(n.wt_unacked as u64)),
            ("wbk_unacked", nu(n.wbk_unacked as u64)),
            ("inval_done_at", su(n.inval_done_at)),
            (
                "parked_forwards",
                Value::Array(
                    parked_fw
                        .into_iter()
                        .map(|(l, msg)| Value::Array(vec![su(l), enc_msg(&msg)]))
                        .collect(),
                ),
            ),
            ("locks", Value::Array(locks)),
            ("barriers", Value::Array(barriers)),
        ])
    }
}

// ---------------------------------------------------------------- decoding

fn field<'a>(v: &'a Value, k: &str) -> R<&'a Value> {
    v.get(k).ok_or_else(|| corrupt(format!("missing field `{k}`")))
}

/// Decode a string-encoded u64 value.
fn as_su(v: &Value, what: &str) -> R<u64> {
    let s = v
        .as_str()
        .ok_or_else(|| corrupt(format!("{what}: expected string-encoded u64")))?;
    s.parse::<u64>().map_err(|_| corrupt(format!("{what}: bad u64 `{s}`")))
}

fn d_u64(v: &Value, k: &str) -> R<u64> {
    as_su(field(v, k)?, k)
}

fn d_num(v: &Value, k: &str) -> R<u64> {
    field(v, k)?
        .as_u64()
        .ok_or_else(|| corrupt(format!("field `{k}`: expected integer")))
}

fn d_usize(v: &Value, k: &str) -> R<usize> {
    Ok(d_num(v, k)? as usize)
}

fn d_u32(v: &Value, k: &str) -> R<u32> {
    let n = d_num(v, k)?;
    u32::try_from(n).map_err(|_| corrupt(format!("field `{k}`: {n} exceeds u32")))
}

fn d_bool(v: &Value, k: &str) -> R<bool> {
    field(v, k)?
        .as_bool()
        .ok_or_else(|| corrupt(format!("field `{k}`: expected bool")))
}

fn d_str<'a>(v: &'a Value, k: &str) -> R<&'a str> {
    field(v, k)?
        .as_str()
        .ok_or_else(|| corrupt(format!("field `{k}`: expected string")))
}

fn d_arr<'a>(v: &'a Value, k: &str) -> R<&'a Vec<Value>> {
    field(v, k)?
        .as_array()
        .ok_or_else(|| corrupt(format!("field `{k}`: expected array")))
}

fn d_f64(v: &Value, k: &str) -> R<f64> {
    field(v, k)?
        .as_f64()
        .ok_or_else(|| corrupt(format!("field `{k}`: expected number")))
}

/// Decode a node id and validate it against the processor count.
fn d_node(v: &Value, k: &str, np: usize) -> R<usize> {
    let n = d_usize(v, k)?;
    if n >= np {
        return Err(corrupt(format!("field `{k}`: node {n} out of range (< {np})")));
    }
    Ok(n)
}

fn node_val(v: &Value, np: usize, what: &str) -> R<usize> {
    let n = v
        .as_u64()
        .ok_or_else(|| corrupt(format!("{what}: expected node id")))? as usize;
    if n >= np {
        return Err(corrupt(format!("{what}: node {n} out of range (< {np})")));
    }
    Ok(n)
}

fn d_node_set(v: &Value, k: &str, np: usize) -> R<NodeSet> {
    d_arr(v, k)?
        .iter()
        .map(|e| node_val(e, np, k))
        .collect::<R<Vec<usize>>>()
        .map(|nodes| nodes.into_iter().collect())
}

fn d_su_vec(v: &Value, k: &str) -> R<Vec<u64>> {
    d_arr(v, k)?.iter().map(|e| as_su(e, k)).collect()
}

fn tuple<'a, const N: usize>(v: &'a Value, what: &str) -> R<[&'a Value; N]> {
    let a = v
        .as_array()
        .ok_or_else(|| corrupt(format!("{what}: expected a {N}-tuple")))?;
    if a.len() != N {
        return Err(corrupt(format!("{what}: expected {N} elements, got {}", a.len())));
    }
    let mut out = [&Value::Null; N];
    for (slot, e) in out.iter_mut().zip(a.iter()) {
        *slot = e;
    }
    Ok(out)
}

fn dec_msg(v: &Value, np: usize) -> R<Msg> {
    Ok(Msg {
        src: d_node(v, "src", np)?,
        dst: d_node(v, "dst", np)?,
        kind: dec_kind(field(v, "kind")?, np)?,
    })
}

fn dec_kind(v: &Value, np: usize) -> R<MsgKind> {
    use MsgKind::*;
    let t = d_str(v, "t")?;
    let line = || -> R<LineAddr> { Ok(LineAddr(d_u64(v, "line")?)) };
    Ok(match t {
        "ReadReq" => ReadReq { line: line()? },
        "WriteReq" => WriteReq {
            line: line()?,
            had_copy: d_bool(v, "had_copy")?,
            words: d_u64(v, "words")?,
        },
        "WriteThrough" => WriteThrough { line: line()?, words: d_u64(v, "words")? },
        "WriteBack" => WriteBack { line: line()?, words: d_u64(v, "words")? },
        "EvictNotify" => EvictNotify { line: line()?, was_writer: d_bool(v, "was_writer")? },
        "ReadReply" => ReadReply { line: line()?, weak: d_bool(v, "weak")? },
        "WriteReply" => WriteReply {
            line: line()?,
            grant: match d_str(v, "grant")? {
                "immediate" => WriteGrant::Immediate,
                "pending" => WriteGrant::Pending,
                g => return Err(corrupt(format!("unknown write grant `{g}`"))),
            },
            with_data: d_bool(v, "with_data")?,
            weak: d_bool(v, "weak")?,
        },
        "WriteAck" => WriteAck { line: line()? },
        "WriteThroughAck" => WriteThroughAck { line: line()? },
        "WriteBackAck" => WriteBackAck { line: line()? },
        "Invalidate" => Invalidate { line: line()? },
        "WriteNotice" => WriteNotice { line: line()? },
        "Forward" => Forward {
            line: line()?,
            requester: d_node(v, "req", np)?,
            for_write: d_bool(v, "for_write")?,
            ep: d_u64(v, "ep")?,
        },
        "InvAck" => InvAck { line: line()? },
        "NoticeAck" => NoticeAck { line: line()? },
        "OwnerData" => OwnerData { line: line()?, for_write: d_bool(v, "for_write")? },
        "CopyBack" => CopyBack {
            line: line()?,
            demoted_to_shared: d_bool(v, "demoted")?,
            ep: d_u64(v, "ep")?,
        },
        "ForwardNack" => ForwardNack {
            line: line()?,
            requester: d_node(v, "req", np)?,
            for_write: d_bool(v, "for_write")?,
            ep: d_u64(v, "ep")?,
        },
        "LockAcq" => LockAcq { lock: d_u32(v, "lock")? },
        "LockGrant" => LockGrant { lock: d_u32(v, "lock")? },
        "LockRel" => LockRel { lock: d_u32(v, "lock")? },
        "BarrierArrive" => BarrierArrive { bar: d_u32(v, "bar")? },
        "BarrierRelease" => BarrierRelease { bar: d_u32(v, "bar")? },
        "BusyNack" => BusyNack {
            line: line()?,
            for_write: d_bool(v, "for_write")?,
            had_copy: d_bool(v, "had_copy")?,
            words: d_u64(v, "words")?,
            attempt: d_u32(v, "attempt")?,
        },
        "ForwardCancel" => ForwardCancel { line: line()?, ep: d_u64(v, "ep")? },
        "Heartbeat" => Heartbeat,
        k => return Err(corrupt(format!("unknown message kind `{k}`"))),
    })
}

fn dec_event(v: &Value, np: usize) -> R<Event> {
    Ok(match d_str(v, "t")? {
        "step" => Event::ProcStep(d_node(v, "p", np)?),
        "msg" => Event::Msg(dec_msg(field(v, "msg")?, np)?),
        "cb" => Event::CbFlush(d_node(v, "p", np)?, LineAddr(d_u64(v, "line")?)),
        "xmsg" => Event::XMsg {
            msg: dec_msg(field(v, "msg")?, np)?,
            seq: d_u64(v, "seq")?,
            corrupt: d_bool(v, "corrupt")?,
        },
        "linkctl" => Event::LinkCtl { seq: d_u64(v, "seq")?, ack: d_bool(v, "ack")? },
        "retry" => Event::RetryTimer { seq: d_u64(v, "seq")? },
        "ni" => Event::NiRetry {
            msg: dec_msg(field(v, "msg")?, np)?,
            attempts: d_u32(v, "attempts")?,
        },
        "nack" => Event::NackRetry { msg: dec_msg(field(v, "msg")?, np)? },
        "lease" => Event::LeaseTick,
        "crashnode" => Event::CrashNode { victim: d_node(v, "victim", np)? },
        t => return Err(corrupt(format!("unknown event tag `{t}`"))),
    })
}

fn dec_op(v: &Value) -> R<Op> {
    Ok(match d_str(v, "t")? {
        "compute" => Op::Compute(d_u32(v, "n")?),
        "read" => Op::Read(d_u64(v, "a")?),
        "write" => Op::Write(d_u64(v, "a")?),
        "acquire" => Op::Acquire(d_u32(v, "lock")?),
        "release" => Op::Release(d_u32(v, "lock")?),
        "barrier" => Op::Barrier(d_u32(v, "bar")?),
        "fence" => Op::Fence,
        "done" => Op::Done,
        t => return Err(corrupt(format!("unknown op tag `{t}`"))),
    })
}

fn dec_pending_sync(v: &Value) -> R<PendingSync> {
    Ok(match d_str(v, "t")? {
        "lockrel" => PendingSync::LockRelease(d_u32(v, "lock")?),
        "barrier" => PendingSync::Barrier(d_u32(v, "bar")?),
        t => return Err(corrupt(format!("unknown pending-sync tag `{t}`"))),
    })
}

fn dec_status(v: &Value) -> R<ProcStatus> {
    Ok(match d_str(v, "t")? {
        "running" => ProcStatus::Running,
        "sread" => ProcStatus::StalledRead(LineAddr(d_u64(v, "line")?)),
        "swfull" => ProcStatus::StalledWriteFull,
        "swrite" => ProcStatus::StalledWrite(LineAddr(d_u64(v, "line")?)),
        "releasing" => ProcStatus::Releasing(dec_pending_sync(field(v, "sync")?)?),
        "wlock" => ProcStatus::WaitingLock(d_u32(v, "lock")?),
        "inbar" => ProcStatus::InBarrier(d_u32(v, "bar")?),
        "finished" => ProcStatus::Finished,
        "crashed" => ProcStatus::Crashed,
        t => return Err(corrupt(format!("unknown proc status tag `{t}`"))),
    })
}

fn dec_stall_kind(s: &str) -> R<StallKind> {
    Ok(match s {
        "cpu" => StallKind::Cpu,
        "read" => StallKind::Read,
        "write" => StallKind::Write,
        "sync" => StallKind::Sync,
        _ => return Err(corrupt(format!("unknown stall kind `{s}`"))),
    })
}

fn dec_line_state(s: &str) -> R<LineState> {
    Ok(match s {
        "inv" => LineState::Invalid,
        "ro" => LineState::ReadOnly,
        "rw" => LineState::ReadWrite,
        _ => return Err(corrupt(format!("unknown line state `{s}`"))),
    })
}

fn dec_site(v: &Value) -> R<RaceSite> {
    RaceSite::from_json(v).ok_or_else(|| corrupt("bad race site"))
}

fn dec_fault_plan(v: &Value) -> R<FaultPlan> {
    let rates_v = d_arr(v, "rates")?;
    if rates_v.len() != MsgClass::COUNT {
        return Err(corrupt(format!(
            "fault plan: expected {} rate entries, got {}",
            MsgClass::COUNT,
            rates_v.len()
        )));
    }
    let mut rates = [FaultRates::default(); MsgClass::COUNT];
    for (slot, rv) in rates.iter_mut().zip(rates_v.iter()) {
        *slot = FaultRates {
            drop: d_f64(rv, "drop")?,
            duplicate: d_f64(rv, "duplicate")?,
            delay: d_f64(rv, "delay")?,
            corrupt: d_f64(rv, "corrupt")?,
        };
    }
    let drop_nth = match field(v, "drop_nth")? {
        Value::Null => None,
        dv => {
            let [class, n] = tuple::<2>(dv, "drop_nth")?;
            let idx = class
                .as_u64()
                .ok_or_else(|| corrupt("drop_nth: expected class index"))?
                as usize;
            let class = *MsgClass::ALL
                .get(idx)
                .ok_or_else(|| corrupt(format!("drop_nth: bad message class {idx}")))?;
            Some((class, as_su(n, "drop_nth.n")?))
        }
    };
    // v1 documents predate crash plans; absent (or null) means none.
    let crash = match v.get("crash") {
        None | Some(Value::Null) => None,
        Some(cv) => {
            let mut victims = Vec::new();
            for e in d_arr(cv, "victims")? {
                let [n, at] = tuple::<2>(e, "crash victim")?;
                victims.push((
                    n.as_u64().ok_or_else(|| corrupt("crash victim node"))? as usize,
                    as_su(at, "crash victim cycle")?,
                ));
            }
            let crash_nth = match field(cv, "crash_nth")? {
                Value::Null => None,
                nv => {
                    let [n, k] = tuple::<2>(nv, "crash_nth")?;
                    Some((
                        n.as_u64().ok_or_else(|| corrupt("crash_nth node"))? as usize,
                        as_su(k, "crash_nth.n")?,
                    ))
                }
            };
            Some(CrashPlan {
                victims,
                crash_nth,
                heartbeat_every: d_u64(cv, "heartbeat_every")?,
                lease_timeout: d_u64(cv, "lease_timeout")?,
            })
        }
    };
    Ok(FaultPlan {
        seed: d_u64(v, "seed")?,
        rates,
        delay_cycles: d_u64(v, "delay_cycles")?,
        drop_nth,
        retry_timeout: d_u64(v, "retry_timeout")?,
        max_retries: d_u32(v, "max_retries")?,
        crash,
    })
}

fn dec_fault_counters(v: &Value) -> R<FaultCounters> {
    Ok(FaultCounters {
        dropped: d_u64(v, "dropped")?,
        duplicated: d_u64(v, "duplicated")?,
        delayed: d_u64(v, "delayed")?,
        corrupted: d_u64(v, "corrupted")?,
    })
}

fn dec_net_state(v: &Value) -> R<NetworkState> {
    let ni = match field(v, "ni")? {
        Value::Null => None,
        nv => {
            let queues = |k: &str| -> R<Vec<Vec<Cycle>>> {
                d_arr(nv, k)?
                    .iter()
                    .map(|q| {
                        q.as_array()
                            .ok_or_else(|| corrupt(format!("ni.{k}: expected array")))?
                            .iter()
                            .map(|t| as_su(t, k))
                            .collect()
                    })
                    .collect()
            };
            Some(NiSnapshot {
                ingress: queues("ingress")?,
                egress: queues("egress")?,
                peak_ingress: d_usize(nv, "peak_ingress")?,
                peak_egress: d_usize(nv, "peak_egress")?,
            })
        }
    };
    let injector = match field(v, "injector")? {
        Value::Null => None,
        iv => {
            let arr5 = |k: &str| -> R<[u64; MsgClass::COUNT]> {
                let xs = d_su_vec(iv, k)?;
                <[u64; MsgClass::COUNT]>::try_from(xs).map_err(|xs| {
                    corrupt(format!(
                        "injector.{k}: expected {} entries, got {}",
                        MsgClass::COUNT,
                        xs.len()
                    ))
                })
            };
            Some(InjectorState {
                streams: arr5("streams")?,
                sent: arr5("sent")?,
                counters: dec_fault_counters(field(iv, "counters")?)?,
            })
        }
    };
    Ok(NetworkState {
        send_free: d_su_vec(v, "send_free")?,
        msgs: d_u64(v, "msgs")?,
        bytes_total: d_u64(v, "bytes_total")?,
        ni,
        injector,
    })
}

fn dec_xmit(v: &Value, np: usize) -> R<XmitState> {
    let mut st = XmitState { next_seq: d_u64(v, "next_seq")?, ..XmitState::default() };
    for e in d_arr(v, "in_flight")? {
        let seq = d_u64(e, "seq")?;
        let f = InFlight {
            msg: dec_msg(field(e, "msg")?, np)?,
            attempts: d_u32(e, "attempts")?,
            next_deadline: d_u64(e, "deadline")?,
        };
        if st.in_flight.insert(seq, f).is_some() {
            return Err(corrupt(format!("xmit: duplicate in-flight seq {seq}")));
        }
    }
    for e in d_arr(v, "seen")? {
        st.seen.insert(as_su(e, "xmit.seen")?);
    }
    for e in d_arr(v, "gave_up")? {
        st.gave_up.push(dec_msg(e, np)?);
    }
    let cv = field(v, "counters")?;
    st.counters = XmitCounters {
        link_nacks: d_u64(cv, "link_nacks")?,
        retries: d_u64(cv, "retries")?,
        timeouts: d_u64(cv, "timeouts")?,
        retries_exhausted: d_u64(cv, "retries_exhausted")?,
        dup_suppressed: d_u64(cv, "dup_suppressed")?,
        link_msgs: d_u64(cv, "link_msgs")?,
    };
    Ok(st)
}

fn dec_values(v: &Value, np: usize) -> R<ValueTracker> {
    let seq = d_su_vec(v, "seq")?;
    if seq.len() != np {
        return Err(corrupt(format!("values.seq: expected {np} entries, got {}", seq.len())));
    }
    let mut home = BTreeMap::new();
    for e in d_arr(v, "home")? {
        let [line, word, proc, wseq] = tuple::<4>(e, "values.home entry")?;
        let p = node_val(proc, np, "values.home proc")?;
        home.insert(
            (as_su(line, "values.home line")?, word.as_u64().ok_or_else(|| corrupt("values.home word"))? as usize),
            WriteId { proc: p, seq: as_su(wseq, "values.home seq")? },
        );
    }
    let mut unflushed: BTreeMap<(ProcId, u64), BTreeMap<usize, WriteId>> = BTreeMap::new();
    for e in d_arr(v, "unflushed")? {
        let p = d_node(e, "proc", np)?;
        let line = d_u64(e, "line")?;
        let mut words = BTreeMap::new();
        for w in d_arr(e, "words")? {
            let [word, proc, wseq] = tuple::<3>(w, "values.unflushed word")?;
            let wp = node_val(proc, np, "values.unflushed proc")?;
            words.insert(
                word.as_u64().ok_or_else(|| corrupt("values.unflushed word"))? as usize,
                WriteId { proc: wp, seq: as_su(wseq, "values.unflushed seq")? },
            );
        }
        unflushed.insert((p, line), words);
    }
    Ok(ValueTracker::from_parts(seq, home, unflushed))
}

fn dec_race(v: &Value) -> R<RaceDetectorState> {
    let clocks_at = |ov: &Value, k: &str| -> R<Vec<u64>> { d_su_vec(ov, k) };
    let mut words = Vec::new();
    for wv in d_arr(v, "words")? {
        let write = match field(wv, "write")? {
            Value::Null => None,
            xv => {
                let [p, c, site] = tuple::<3>(xv, "race word write")?;
                Some((
                    p.as_u64().ok_or_else(|| corrupt("race write proc"))? as u32,
                    as_su(c, "race write clock")?,
                    dec_site(site)?,
                ))
            }
        };
        let rv = field(wv, "read")?;
        let read = match d_str(rv, "t")? {
            "none" => RaceReadState::None,
            "epoch" => RaceReadState::Epoch(
                d_num(rv, "proc")? as u32,
                d_u64(rv, "clock")?,
                dec_site(field(rv, "site")?)?,
            ),
            "vector" => RaceReadState::Vector(
                clocks_at(rv, "clocks")?,
                d_arr(rv, "sites")?.iter().map(dec_site).collect::<R<Vec<_>>>()?,
            ),
            t => return Err(corrupt(format!("unknown race read tag `{t}`"))),
        };
        words.push(WordState {
            addr: d_u64(wv, "addr")?,
            write,
            read,
            racy: d_bool(wv, "racy")?,
        });
    }
    let mut barriers = Vec::new();
    for bv in d_arr(v, "barriers")? {
        barriers.push(RaceBarrierState {
            id: d_u32(bv, "id")?,
            gather: clocks_at(bv, "gather")?,
            arrivals: d_usize(bv, "arrivals")?,
            completed: clocks_at(bv, "completed")?,
        });
    }
    let mut locks = Vec::new();
    for lv in d_arr(v, "locks")? {
        let [l, c] = tuple::<2>(lv, "race lock entry")?;
        let cs = c
            .as_array()
            .ok_or_else(|| corrupt("race lock clock"))?
            .iter()
            .map(|e| as_su(e, "race lock clock"))
            .collect::<R<Vec<u64>>>()?;
        locks.push((l.as_u64().ok_or_else(|| corrupt("race lock id"))? as u32, cs));
    }
    let clocks = d_arr(v, "clocks")?
        .iter()
        .map(|cv| {
            cv.as_array()
                .ok_or_else(|| corrupt("race clocks"))?
                .iter()
                .map(|e| as_su(e, "race clocks"))
                .collect()
        })
        .collect::<R<Vec<Vec<u64>>>>()?;
    Ok(RaceDetectorState {
        num_procs: d_usize(v, "num_procs")?,
        word_size: d_u64(v, "word_size")?,
        clocks,
        refs: d_su_vec(v, "refs")?,
        locks,
        barriers,
        words,
        stats: FromJson::from_json(field(v, "stats")?)
            .ok_or_else(|| corrupt("bad race stats"))?,
    })
}

impl MachineSnapshot {
    /// Serialize to the canonical pretty-printed JSON document.
    /// Serialize → [`MachineSnapshot::parse`] → serialize is
    /// byte-identical.
    pub fn to_json_string(&self) -> String {
        self.root.pretty()
    }

    /// Parse a snapshot document. Fails with
    /// [`SnapshotError::UnknownVersion`] for documents written by a
    /// different schema version and [`SnapshotError::Corrupt`] for
    /// truncated or malformed input — never panics.
    pub fn parse(s: &str) -> R<Self> {
        let root =
            lrc_json::parse(s).map_err(|e| corrupt(format!("JSON parse error: {e}")))?;
        let found = root
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| corrupt("missing snapshot version stamp"))?;
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&found) {
            return Err(SnapshotError::UnknownVersion { found });
        }
        Ok(MachineSnapshot { root })
    }

    /// The simulated cycle the machine was captured at.
    pub fn cycle(&self) -> Cycle {
        self.root
            .get("now")
            .and_then(|v| v.as_str())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// Name of the workload the captured run was executing.
    pub fn workload_name(&self) -> &str {
        self.root
            .get("workload")
            .and_then(|w| w.get("name"))
            .and_then(|v| v.as_str())
            .unwrap_or("")
    }

    /// The protocol the captured machine was simulating.
    pub fn protocol(&self) -> Option<Protocol> {
        self.root.get("protocol").and_then(Protocol::from_json)
    }

    /// The captured machine configuration.
    pub fn config(&self) -> Option<MachineConfig> {
        self.root.get("config").and_then(MachineConfig::from_json)
    }

    /// The fault plan active in the captured run, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        match self.root.get("fault_plan") {
            Some(Value::Null) | None => None,
            Some(v) => dec_fault_plan(v).ok(),
        }
    }

    /// Rebuild the captured machine. `workload` must be a **fresh**
    /// instance of the same workload the snapshot was taken under (matched
    /// by name and processor count); restore replays the consumed-op
    /// counts against it, which the [`Workload::next_op`] determinism
    /// contract makes exact. Drive the result with [`Machine::run_until`]
    /// and [`Machine::finish_run`] — do **not** call
    /// [`Machine::start_run`], the restored queue already holds the
    /// mid-run events.
    pub fn restore(&self, workload: Box<dyn Workload>) -> R<Machine> {
        let v = &self.root;
        let found = d_num(v, "version")?;
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&found) {
            return Err(SnapshotError::UnknownVersion { found });
        }
        let protocol = Protocol::from_json(field(v, "protocol")?)
            .ok_or_else(|| corrupt("bad protocol"))?;
        let cfg = MachineConfig::from_json(field(v, "config")?)
            .ok_or_else(|| corrupt("bad machine config"))?;
        let np = cfg.num_procs;

        let mut m = Machine::new(cfg, protocol);
        match field(v, "fault_plan")? {
            Value::Null => {}
            pv => m = m.with_fault_plan(dec_fault_plan(pv)?),
        }
        // The link layer exists exactly when the plan is active; a snapshot
        // disagreeing with its own plan is corrupt.
        let xmit_v = field(v, "xmit")?;
        if xmit_v.is_null() != m.xmit.is_none() {
            return Err(corrupt("xmit state inconsistent with fault plan"));
        }
        // Likewise the crash subsystem exists exactly when the plan carries
        // a crash section (v1 documents have neither).
        let crash_v = v.get("crash").unwrap_or(&Value::Null);
        if crash_v.is_null() != m.crash.is_none() {
            return Err(corrupt("crash state inconsistent with fault plan"));
        }

        // Workload: match, then fast-forward by the consumed-op counts.
        let wv = field(v, "workload")?;
        let wname = d_str(wv, "name")?;
        if workload.name() != wname {
            return Err(unsupported(format!(
                "workload mismatch: snapshot was taken under `{wname}`, got `{}`",
                workload.name()
            )));
        }
        if workload.num_procs() != np {
            return Err(unsupported(format!(
                "workload has {} processors, snapshot machine has {np}",
                workload.num_procs()
            )));
        }
        let ops = d_su_vec(wv, "ops_consumed")?;
        if ops.len() != np {
            return Err(corrupt(format!(
                "ops_consumed: expected {np} entries, got {}",
                ops.len()
            )));
        }
        let mut workload = workload;
        for (p, &count) in ops.iter().enumerate() {
            for _ in 0..count {
                let _ = workload.next_op(p);
            }
        }
        m.workload = workload;
        m.ops_consumed = ops;

        // Run-control scalars.
        m.finished = d_usize(v, "finished")?;
        if m.finished > np {
            return Err(corrupt(format!("finished count {} exceeds {np}", m.finished)));
        }
        m.handled = d_u64(v, "handled")?;
        m.max_cycles = d_u64(v, "max_cycles")?;
        m.check_every = d_u64(v, "check_every")?;
        m.watchdog = match field(v, "watchdog")? {
            Value::Null => None,
            t => Some(as_su(t, "watchdog")?),
        };
        m.forward_seq = d_u64(v, "forward_seq")?;
        m.park_seq = d_u64(v, "park_seq")?;
        m.pending_ni_retries = d_u32(v, "pending_ni_retries")?;
        m.last_ni_reject = match field(v, "last_ni_reject")? {
            Value::Null => None,
            rv => {
                let [node, occ, cap] = tuple::<3>(rv, "last_ni_reject")?;
                Some((
                    node_val(node, np, "last_ni_reject node")?,
                    occ.as_u64().ok_or_else(|| corrupt("last_ni_reject occupancy"))? as usize,
                    cap.as_u64().ok_or_else(|| corrupt("last_ni_reject cap"))? as usize,
                ))
            }
        };

        // Per-node state.
        let nodes_v = d_arr(v, "nodes")?;
        if nodes_v.len() != np {
            return Err(corrupt(format!("expected {np} nodes, got {}", nodes_v.len())));
        }
        for (p, nv) in nodes_v.iter().enumerate() {
            Self::restore_node(&mut m, p, nv)?;
        }

        // Directory and home-side tables.
        for ev in d_arr(v, "dir")? {
            let line = d_u64(ev, "line")?;
            let pending = match field(ev, "pending")? {
                Value::Null => None,
                pv => Some(AckCollection {
                    awaiting: d_u32(pv, "awaiting")?,
                    waiters: d_arr(pv, "waiters")?
                        .iter()
                        .map(|w| node_val(w, np, "dir waiter"))
                        .collect::<R<Vec<_>>>()?,
                    // v1 documents predate the debtor multiset; an empty
                    // one only disables the crash-time write-off, which
                    // v1 snapshots cannot need.
                    from: match pv.get("from") {
                        None => Vec::new(),
                        Some(_) => d_arr(pv, "from")?
                            .iter()
                            .map(|w| node_val(w, np, "dir ack debtor"))
                            .collect::<R<Vec<_>>>()?,
                    },
                }),
            };
            let entry = DirEntry::from_parts(
                d_node_set(ev, "sharers", np)?,
                d_node_set(ev, "writers", np)?,
                d_node_set(ev, "notified", np)?,
                pending,
                d_bool(ev, "busy")?,
                d_bool(ev, "overflow")?,
            )
            .map_err(corrupt)?;
            m.dir.insert(line, entry);
        }
        for ev in d_arr(v, "parked")? {
            let line = d_u64(ev, "line")?;
            let mut dq = VecDeque::new();
            for pv in d_arr(ev, "msgs")? {
                dq.push_back((dec_msg(field(pv, "msg")?, np)?, d_u64(pv, "at")?));
            }
            m.parked.insert(line, dq);
        }
        for ev in d_arr(v, "page_home")? {
            let [page, home] = tuple::<2>(ev, "page_home entry")?;
            m.page_home
                .insert(as_su(page, "page_home page")?, node_val(home, np, "page_home home")?);
        }
        for ev in d_arr(v, "busy_info")? {
            let line = d_u64(ev, "line")?;
            m.busy_info.insert(
                line,
                ForwardEp {
                    id: d_u64(ev, "id")?,
                    owner: d_node(ev, "owner", np)?,
                    requester: d_node(ev, "req", np)?,
                    for_write: d_bool(ev, "for_write")?,
                    served: d_bool(ev, "served")?,
                },
            );
        }
        for ev in d_arr(v, "nacks_given")? {
            let [line, n] = tuple::<2>(ev, "nacks_given entry")?;
            m.nacks_given.insert(
                as_su(line, "nacks_given line")?,
                n.as_u64().ok_or_else(|| corrupt("nacks_given count"))? as u32,
            );
        }

        // Network, link layer, trackers, statistics.
        m.net.restore_state(&dec_net_state(field(v, "net")?)?).map_err(corrupt)?;
        if !xmit_v.is_null() {
            m.xmit = Some(Box::new(dec_xmit(xmit_v, np)?));
        }
        for ev in d_arr(v, "grant_log")? {
            let [l, n] = tuple::<2>(ev, "grant_log entry")?;
            m.grant_log.push((
                l.as_u64().ok_or_else(|| corrupt("grant_log lock"))? as u32,
                node_val(n, np, "grant_log node")?,
            ));
        }
        m.values = match field(v, "values")? {
            Value::Null => None,
            vv => Some(dec_values(vv, np)?),
        };
        m.race = match field(v, "race")? {
            Value::Null => None,
            rv => Some(Box::new(
                RaceDetector::from_state(dec_race(rv)?).map_err(corrupt)?,
            )),
        };
        let stats = MachineStats::from_json(field(v, "stats")?)
            .ok_or_else(|| corrupt("bad machine stats"))?;
        if stats.procs.len() != np {
            return Err(corrupt(format!(
                "stats cover {} processors, machine has {np}",
                stats.procs.len()
            )));
        }
        m.stats = stats;
        if !crash_v.is_null() {
            // with_fault_plan armed a fresh context; overlay the captured
            // runtime state (deaths, suspicions, leases, unacked credit).
            let c = m.crash.as_deref_mut().expect("consistency checked above");
            dec_crash_ctx(crash_v, c, np)?;
        }

        // Event queue: tie keys, the clock, and the high-water mark.
        let ev_seq = d_su_vec(v, "ev_seq")?;
        if ev_seq.len() != np {
            return Err(corrupt(format!("ev_seq: expected {np} entries, got {}", ev_seq.len())));
        }
        m.ev_seq = ev_seq;
        let qv = field(v, "queue")?;
        let mut entries = Vec::new();
        for ev in d_arr(qv, "events")? {
            entries.push((d_u64(ev, "at")?, d_u64(ev, "key")?, dec_event(field(ev, "ev")?, np)?));
        }
        m.queue = EventQueue::from_entries(entries, d_u64(v, "now")?, d_usize(qv, "peak")?);

        // The snapshot stores no flight-recorder ring contents (they never
        // affect simulation); re-arm a default-depth recorder so wedge
        // diagnoses after a restore still carry an event tail.
        if d_bool(v, "recorder_armed")? {
            let o = m.obs_mut();
            if o.recorder.is_none() {
                o.recorder = Some(FlightRecorder::new(np, DEFAULT_FLIGHT_CAP));
            }
        }
        Ok(m)
    }

    fn restore_node(m: &mut Machine, p: usize, nv: &Value) -> R<()> {
        let np = m.cfg.num_procs;
        let cv = field(nv, "cache")?;
        let mut slots = Vec::new();
        for sv in d_arr(cv, "slots")? {
            let [line, state, dirty, stamp] = tuple::<4>(sv, "cache slot")?;
            slots.push((
                LineAddr(as_su(line, "cache line")?),
                dec_line_state(
                    state.as_str().ok_or_else(|| corrupt("cache slot state"))?,
                )?,
                as_su(dirty, "cache dirty mask")?,
                as_su(stamp, "cache stamp")?,
            ));
        }
        let tick = d_u64(cv, "tick")?;
        let mut wb_entries = Vec::new();
        for ev in d_arr(nv, "wb")? {
            let [line, words, ready, issued] = tuple::<4>(ev, "write-buffer entry")?;
            wb_entries.push(WbEntry {
                line: LineAddr(as_su(line, "wb line")?),
                words: as_su(words, "wb words")?,
                ready: ready.as_bool().ok_or_else(|| corrupt("wb ready"))?,
                issued: issued.as_bool().ok_or_else(|| corrupt("wb issued"))?,
            });
        }
        let mut cb_entries = Vec::new();
        for ev in d_arr(nv, "cb")? {
            let [line, words] = tuple::<2>(ev, "coalescing-buffer entry")?;
            cb_entries.push(CbEntry {
                line: LineAddr(as_su(line, "cb line")?),
                words: as_su(words, "cb words")?,
            });
        }
        let mem = d_su_vec(nv, "mem")?;
        let bus = d_su_vec(nv, "bus")?;
        let pp = d_su_vec(nv, "pp")?;
        if mem.len() != 3 || bus.len() != 2 || pp.len() != 2 {
            return Err(corrupt("bad resource-clock tuple lengths"));
        }

        let n = &mut m.nodes[p];
        n.status = dec_status(field(nv, "status")?)?;
        n.stall_start = d_u64(nv, "stall_start")?;
        n.stall_kind = dec_stall_kind(d_str(nv, "stall_kind")?)?;
        n.deferred_op = match field(nv, "deferred_op")? {
            Value::Null => None,
            ov => Some(dec_op(ov)?),
        };
        n.step_scheduled = d_bool(nv, "step_scheduled")?;
        if !n.cache.restore_slots(&slots, tick) {
            return Err(corrupt(format!("node {p}: cache slot count mismatch")));
        }
        if !n.wb.restore_entries(&wb_entries) {
            return Err(corrupt(format!("node {p}: write buffer over capacity")));
        }
        if !n.cb.restore_entries(&cb_entries) {
            return Err(corrupt(format!("node {p}: coalescing buffer over capacity")));
        }
        n.mem.restore(mem[0], mem[1], mem[2]);
        n.bus.restore(bus[0], bus[1]);
        n.pp.restore(pp[0], pp[1]);

        n.outstanding.clear();
        for ov in d_arr(nv, "outstanding")? {
            n.outstanding.insert(
                d_u64(ov, "line")?,
                Outstanding {
                    waiting_data: d_bool(ov, "waiting_data")?,
                    waiting_ack: d_bool(ov, "waiting_ack")?,
                    early_ack: d_bool(ov, "early_ack")?,
                    resume_proc: d_bool(ov, "resume_proc")?,
                    retire_wb: d_bool(ov, "retire_wb")?,
                    apply_words: d_u64(ov, "apply_words")?,
                    stale_on_fill: d_bool(ov, "stale_on_fill")?,
                },
            );
        }
        n.pending_invals.clear();
        for ev in d_arr(nv, "pending_invals")? {
            n.pending_invals.insert(as_su(ev, "pending_invals")?);
        }
        n.inval_all = d_bool(nv, "inval_all")?;
        n.delayed_writes.clear();
        for ev in d_arr(nv, "delayed_writes")? {
            let [line, mask] = tuple::<2>(ev, "delayed_writes entry")?;
            n.delayed_writes
                .insert(as_su(line, "delayed line")?, as_su(mask, "delayed mask")?);
        }
        n.wt_unacked = d_u32(nv, "wt_unacked")?;
        n.wbk_unacked = d_u32(nv, "wbk_unacked")?;
        n.inval_done_at = d_u64(nv, "inval_done_at")?;
        let mut parked_fw = Vec::new();
        for ev in d_arr(nv, "parked_forwards")? {
            let [line, msg] = tuple::<2>(ev, "parked_forwards entry")?;
            parked_fw.push((as_su(line, "parked forward line")?, dec_msg(msg, np)?));
        }
        let n = &mut m.nodes[p];
        n.parked_forwards.clear();
        for (line, msg) in parked_fw {
            n.parked_forwards.insert(line, msg);
        }

        let mut locks = Vec::new();
        for lv in d_arr(nv, "locks")? {
            let holder = match field(lv, "holder")? {
                Value::Null => None,
                hv => Some(node_val(hv, np, "lock holder")?),
            };
            locks.push((
                d_u32(lv, "lock")?,
                holder,
                d_arr(lv, "queue")?
                    .iter()
                    .map(|q| node_val(q, np, "lock waiter"))
                    .collect::<R<Vec<_>>>()?,
            ));
        }
        let mut barriers = Vec::new();
        for bv in d_arr(nv, "barriers")? {
            barriers.push((
                d_u32(bv, "bar")?,
                d_arr(bv, "arrived")?
                    .iter()
                    .map(|a| node_val(a, np, "barrier arrival"))
                    .collect::<R<Vec<_>>>()?,
            ));
        }
        let n = &mut m.nodes[p];
        n.locks.restore(&locks);
        n.barriers.restore(&barriers);
        Ok(())
    }
}

impl Machine {
    /// Capture this machine's complete simulation state — see
    /// [`MachineSnapshot::capture`].
    pub fn snapshot(&self) -> Result<MachineSnapshot, SnapshotError> {
        MachineSnapshot::capture(self)
    }
}

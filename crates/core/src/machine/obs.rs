//! The machine's observability wiring: structured trace emission, latency
//! probes, the interval metrics sampler, and the flight recorder.
//!
//! Everything hangs off `Machine::obs`, a single `Option<Box<Obs>>`: a
//! machine built without observability carries a `None` and every hot-path
//! hook is one never-taken branch — the tracing-off run is bit-identical
//! to a build without this module (the golden-fingerprint CI stage holds
//! that line). The cold emission paths live out-of-line here.

use super::{Event, Machine};
use crate::msg::{Msg, MsgKind};
use lrc_sim::{Breakdown, Cycle, FxHashMap, LatencyStats, NodeId};
use lrc_trace::{
    FlightRecorder, MsgMeta, RecData, ResourceEv, StateChange, SyncOp, TimeSeries, TraceFilter,
    TraceRecord, TraceSink,
};

/// Flight-recorder depth per node when the machine arms it automatically
/// for at-risk runs (watchdog, fault plan, or finite resources).
pub(crate) const DEFAULT_FLIGHT_CAP: usize = 64;

/// All observability state, boxed behind one `Option` on the machine.
#[derive(Debug, Clone, Default)]
pub(crate) struct Obs {
    /// Where filtered records go (`None` = no structured trace).
    pub(crate) sink: Option<Box<dyn TraceSink>>,
    /// Which records reach the sink (the recorder sees everything).
    pub(crate) filter: TraceFilter,
    /// Global emission counter; `(at, seq)` totally orders records.
    pub(crate) seq: u64,
    /// Bounded per-node rings of recent records for stall diagnoses.
    pub(crate) recorder: Option<FlightRecorder>,
    /// Latency probes (round-trips, lock hold/wait, barrier skew).
    pub(crate) probe: Option<Probe>,
    /// Interval metrics sampler.
    pub(crate) sampler: Option<Sampler>,
    /// Protocol messages sent (sampler gauge: `sends - recvs` = in flight).
    pub(crate) sends: u64,
    /// Protocol messages received.
    pub(crate) recvs: u64,
}

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_LOCK: u8 = 2;
const TAG_BAR: u8 = 3;

/// Latency probes: watches the message stream and matches request/reply
/// pairs into histograms. A retried request re-opens its entry, so a
/// NACKed round-trip measures from the last retry (the backoff cost shows
/// up separately in `nack.attempts` and the backpressure counters).
#[derive(Debug, Clone)]
pub(crate) struct Probe {
    procs: usize,
    /// Open request departure times, keyed by `(tag, requester, id)`.
    open: FxHashMap<(u8, u64, u64), Cycle>,
    /// Lock grant times, keyed by `(holder, lock)` — closed by the release.
    lock_held: FxHashMap<(u64, u64), Cycle>,
    /// Per-barrier arrival window: `(earliest, latest, arrivals)`.
    bars: FxHashMap<u64, (Cycle, Cycle, usize)>,
    /// The histograms, folded into `MachineStats::latencies` at end of run.
    pub(crate) hist: LatencyStats,
}

impl Probe {
    pub(crate) fn new(procs: usize) -> Self {
        Probe {
            procs,
            open: FxHashMap::default(),
            lock_held: FxHashMap::default(),
            bars: FxHashMap::default(),
            hist: LatencyStats::new(),
        }
    }

    fn close(&mut self, tag: u8, node: u64, id: u64, now: Cycle, name: &str) {
        if let Some(t0) = self.open.remove(&(tag, node, id)) {
            self.hist.record(name, now.saturating_sub(t0));
        }
    }

    fn on_send(&mut self, now: Cycle, src: NodeId, kind: MsgKind) {
        let src = src as u64;
        match kind {
            MsgKind::ReadReq { line } => {
                self.open.insert((TAG_READ, src, line.0), now);
            }
            MsgKind::WriteReq { line, .. } => {
                self.open.insert((TAG_WRITE, src, line.0), now);
            }
            MsgKind::LockAcq { lock } => {
                self.open.insert((TAG_LOCK, src, lock as u64), now);
            }
            MsgKind::LockRel { lock } => {
                if let Some(t0) = self.lock_held.remove(&(src, lock as u64)) {
                    self.hist.record("lock.hold", now.saturating_sub(t0));
                }
            }
            MsgKind::BarrierArrive { bar } => {
                self.open.insert((TAG_BAR, src, bar as u64), now);
                let e = self.bars.entry(bar as u64).or_insert((now, now, 0));
                e.0 = e.0.min(now);
                e.1 = e.1.max(now);
                e.2 += 1;
                let full = e.2 == self.procs;
                if full {
                    if let Some((lo, hi, _)) = self.bars.remove(&(bar as u64)) {
                        self.hist.record("barrier.skew", hi - lo);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_recv(&mut self, now: Cycle, dst: NodeId, kind: MsgKind) {
        let dst = dst as u64;
        match kind {
            MsgKind::ReadReply { line, .. } => self.close(TAG_READ, dst, line.0, now, "rt.read"),
            MsgKind::WriteReply { line, .. } | MsgKind::WriteAck { line } => {
                self.close(TAG_WRITE, dst, line.0, now, "rt.write")
            }
            MsgKind::LockGrant { lock } => {
                self.close(TAG_LOCK, dst, lock as u64, now, "lock.wait");
                self.lock_held.insert((dst, lock as u64), now);
            }
            MsgKind::BarrierRelease { bar } => {
                self.close(TAG_BAR, dst, bar as u64, now, "barrier.wait")
            }
            MsgKind::BusyNack { attempt, .. } => {
                self.hist.record("nack.attempts", u64::from(attempt) + 1)
            }
            _ => {}
        }
    }
}

/// Interval metrics sampler: a self-rearming [`Event::Sample`] snapshots
/// machine gauges every `interval` cycles into a [`TimeSeries`]. Sampling
/// is an ordinary event, so it is part of the deterministic event order —
/// the same seed and config produce a bit-identical series — but it never
/// fires on an otherwise-empty queue, so deadlock detection (queue drained
/// with unfinished processors) is unaffected.
#[derive(Debug, Clone)]
pub(crate) struct Sampler {
    pub(crate) interval: Cycle,
    pub(crate) series: TimeSeries,
    /// Previous tick's per-proc breakdowns, for delta columns.
    last_breakdown: Vec<Breakdown>,
}

impl Sampler {
    pub(crate) fn new(interval: Cycle, procs: usize) -> Self {
        let interval = interval.max(1);
        let mut cols: Vec<String> =
            vec!["cycle".into(), "inflight".into(), "dir_busy".into(), "queue_len".into()];
        for p in 0..procs {
            for g in ["ni_in", "ni_out", "wn_fill", "d_cpu", "d_read", "d_write", "d_sync"] {
                cols.push(format!("p{p}.{g}"));
            }
        }
        Sampler {
            interval,
            series: TimeSeries::new(interval, cols),
            last_breakdown: vec![Breakdown::default(); procs],
        }
    }
}

impl Machine {
    /// The observability block, created on first use.
    pub(crate) fn obs_mut(&mut self) -> &mut Obs {
        self.obs.get_or_insert_with(Box::default)
    }

    /// Record into the flight recorder (always) and the sink (filtered).
    fn emit(obs: &mut Obs, rec: TraceRecord) {
        if let Some(r) = obs.recorder.as_mut() {
            r.push(&rec);
        }
        if let Some(s) = obs.sink.as_mut() {
            if obs.filter.accepts(&rec) {
                s.record(&rec);
            }
        }
    }

    fn msg_meta(&self, kind: MsgKind) -> MsgMeta {
        MsgMeta {
            name: kind.name(),
            class: kind.msg_class(),
            line: kind.line().map(|l| l.0),
            bytes: kind.bytes(
                self.cfg.ctrl_msg_bytes,
                self.cfg.line_size as u64,
                self.cfg.word_size as u64,
            ),
        }
    }

    /// A protocol message left `src` (callers guard on `obs.is_some()`).
    pub(crate) fn obs_msg_send(&mut self, now: Cycle, src: NodeId, dst: NodeId, kind: MsgKind) {
        let meta = self.msg_meta(kind);
        let Some(obs) = self.obs.as_deref_mut() else { return };
        obs.sends += 1;
        let seq = obs.seq;
        obs.seq += 1;
        let rec =
            TraceRecord { at: now, seq, node: src, data: RecData::Send { src, dst, msg: meta } };
        Self::emit(obs, rec);
        if let Some(p) = obs.probe.as_mut() {
            p.on_send(now, src, kind);
        }
    }

    /// A protocol message arrived at its destination.
    pub(crate) fn obs_msg_recv(&mut self, now: Cycle, m: Msg) {
        let meta = self.msg_meta(m.kind);
        let Some(obs) = self.obs.as_deref_mut() else { return };
        obs.recvs += 1;
        let seq = obs.seq;
        obs.seq += 1;
        let rec = TraceRecord {
            at: now,
            seq,
            node: m.dst,
            data: RecData::Recv { src: m.src, dst: m.dst, msg: meta },
        };
        Self::emit(obs, rec);
        if let Some(p) = obs.probe.as_mut() {
            p.on_recv(now, m.dst, m.kind);
        }
    }

    /// A synchronization operation happened at `node`.
    pub(crate) fn obs_sync(&mut self, now: Cycle, node: NodeId, op: SyncOp, id: u64) {
        let Some(obs) = self.obs.as_deref_mut() else { return };
        let seq = obs.seq;
        obs.seq += 1;
        Self::emit(obs, TraceRecord { at: now, seq, node, data: RecData::Sync { op, id } });
    }

    /// A cache-line state transition happened at `node`.
    pub(crate) fn obs_state(&mut self, now: Cycle, node: NodeId, line: u64, change: StateChange) {
        let Some(obs) = self.obs.as_deref_mut() else { return };
        let seq = obs.seq;
        obs.seq += 1;
        Self::emit(obs, TraceRecord { at: now, seq, node, data: RecData::State { line, change } });
    }

    /// A finite-resource event happened at `node`.
    pub(crate) fn obs_resource(&mut self, now: Cycle, node: NodeId, ev: ResourceEv) {
        let Some(obs) = self.obs.as_deref_mut() else { return };
        let seq = obs.seq;
        obs.seq += 1;
        Self::emit(obs, TraceRecord { at: now, seq, node, data: RecData::Resource { ev } });
    }

    /// A crash/recovery event happened at (or was observed by) `node`.
    pub(crate) fn obs_crash(&mut self, now: Cycle, node: NodeId, ev: lrc_trace::CrashEv) {
        let Some(obs) = self.obs.as_deref_mut() else { return };
        let seq = obs.seq;
        obs.seq += 1;
        Self::emit(obs, TraceRecord { at: now, seq, node, data: RecData::Crash { ev } });
    }

    /// Snapshot the sampler's gauges at `t` (the [`Event::Sample`] handler).
    pub(crate) fn take_sample(&mut self, t: Cycle) {
        // Swap the block out so gauge reads can borrow the machine freely.
        let Some(mut obs) = self.obs.take() else { return };
        if let Some(s) = obs.sampler.as_mut() {
            let mut row = Vec::with_capacity(s.series.columns().len());
            row.push(t);
            row.push(obs.sends.saturating_sub(obs.recvs));
            row.push(self.dir.iter().filter(|(_, e)| e.busy || e.pending.is_some()).count()
                as u64);
            row.push(self.queue.len() as u64);
            for p in 0..self.cfg.num_procs {
                let (ni_in, ni_out) = self.net.ni_occupancy(t, p);
                row.push(ni_in as u64);
                row.push(ni_out as u64);
                row.push(self.nodes[p].pending_invals.len() as u64);
                let b = self.stats.procs[p].breakdown;
                let last = &mut s.last_breakdown[p];
                row.push(b.cpu - last.cpu);
                row.push(b.read - last.read);
                row.push(b.write - last.write);
                row.push(b.sync - last.sync);
                *last = b;
            }
            s.series.push_row(row);
        }
        self.obs = Some(obs);
    }

    /// Re-arm the sampler after a tick — only while the run is live, so a
    /// drained queue still means deadlock and a finished run still ends.
    pub(crate) fn rearm_sampler(&mut self, t: Cycle) {
        if self.finished >= self.cfg.num_procs || self.queue.is_empty() {
            return;
        }
        if let Some(iv) = self.obs.as_ref().and_then(|o| o.sampler.as_ref()).map(|s| s.interval)
        {
            self.push_ev(t + iv, 0, Event::Sample);
        }
    }
}

//! White-box tests of the weak-block lifecycle (paper Figure 1), using the
//! machine's inspection API to check directory and cache state at the end
//! of carefully scripted runs.

use lrc_core::{DirState, Machine};
use lrc_mem::LineState;
use lrc_sim::{LineAddr, MachineConfig, Op, Protocol, Script};

fn machine(n: usize, p: Protocol) -> Machine {
    Machine::new(MachineConfig::paper_default(n), p).with_max_cycles(50_000_000)
}

fn addr(line: u64, word: u64) -> u64 {
    line * 128 + word * 4
}

#[test]
fn single_writer_block_is_dirty_at_directory() {
    let w = Script::new("t", vec![vec![Op::Write(addr(3, 0))], vec![]]);
    let (_, m) = machine(2, Protocol::Lrc).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(3)).expect("entry exists");
    assert_eq!(e.state(), DirState::Dirty);
    assert_eq!(e.dirty_owner(), Some(0));
    assert_eq!(m.cache_state(0, LineAddr(3)), LineState::ReadWrite);
}

#[test]
fn reader_plus_writer_block_goes_weak_and_both_are_flagged() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0)), Op::Compute(2000)],
            vec![Op::Read(addr(0, 4)), Op::Compute(3000)],
        ],
    );
    let (_, m) = machine(2, Protocol::Lrc).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert_eq!(e.state(), DirState::Weak);
    assert!(e.is_writer(0));
    assert!(e.is_sharer(1));
    // Both the writer (via its weak grant) and the reader (via the notice)
    // must be scheduled to invalidate at their next acquire.
    assert!(m.pending_invals(0).contains(&LineAddr(0)), "{:?}", m.pending_invals(0));
    assert!(m.pending_invals(1).contains(&LineAddr(0)), "{:?}", m.pending_invals(1));
    // Notified bits cover every sharer.
    assert!(e.is_notified(0) && e.is_notified(1));
}

#[test]
fn weak_block_reverts_to_uncached_after_all_acquires() {
    let w = Script::new(
        "t",
        vec![
            vec![
                Op::Compute(400),
                Op::Write(addr(0, 0)),
                Op::Compute(3000),
                Op::Acquire(0),
                Op::Release(0),
            ],
            vec![
                Op::Read(addr(0, 4)),
                Op::Compute(3500),
                Op::Acquire(1),
                Op::Release(1),
            ],
        ],
    );
    let (_, m) = machine(2, Protocol::Lrc).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert_eq!(e.state(), DirState::Uncached, "both copies self-invalidated");
    assert_eq!(m.cache_state(0, LineAddr(0)), LineState::Invalid);
    assert_eq!(m.cache_state(1, LineAddr(0)), LineState::Invalid);
    assert!(m.pending_invals(0).is_empty());
    assert!(m.pending_invals(1).is_empty());
}

#[test]
fn multiple_concurrent_writers_coexist_under_lazy() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Read(addr(0, 0)), Op::Compute(500), Op::Write(addr(0, 0)), Op::Compute(2000)],
            vec![Op::Read(addr(0, 1)), Op::Compute(500), Op::Write(addr(0, 1)), Op::Compute(2000)],
            vec![Op::Read(addr(0, 2)), Op::Compute(500), Op::Write(addr(0, 2)), Op::Compute(2000)],
        ],
    );
    let (r, m) = machine(3, Protocol::Lrc).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert_eq!(e.state(), DirState::Weak);
    assert_eq!(e.writer_count(), 3, "all three write concurrently");
    for p in 0..3 {
        assert_eq!(m.cache_state(p, LineAddr(0)), LineState::ReadWrite, "proc {p}");
    }
    // Nobody was invalidated: one cold read miss each.
    for ps in &r.stats.procs {
        assert_eq!(ps.read_misses, 1);
    }
}

#[test]
fn eager_never_reaches_weak() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Read(addr(0, 0)), Op::Write(addr(0, 0)), Op::Compute(1000)],
            vec![Op::Read(addr(0, 1)), Op::Write(addr(0, 1)), Op::Compute(1000)],
        ],
    );
    let (_, m) = machine(2, Protocol::Erc).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert_ne!(e.state(), DirState::Weak);
    assert!(e.writer_count() <= 1, "eager allows at most one writer");
}

#[test]
fn eviction_notifies_home_and_clears_sharer() {
    // Tiny cache (2 lines): reading a conflicting line evicts the first,
    // and the home must forget the sharer.
    let mut cfg = MachineConfig::paper_default(2);
    cfg.cache_size = 2 * cfg.line_size;
    let w = Script::new(
        "t",
        vec![
            vec![
                Op::Read(addr(0, 0)),
                Op::Read(addr(2, 0)), // same set (2 sets, direct-mapped)... sets=2: line0->set0, line2->set0
                Op::Read(addr(4, 0)), // evicts again
                Op::Compute(2000),
            ],
            vec![],
        ],
    );
    let (_, m) = Machine::new(cfg, Protocol::Lrc)
        .with_max_cycles(50_000_000)
        .run_keep(Box::new(w));
    // Line 0 was evicted; home must no longer list proc 0 as a sharer.
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert!(!e.is_sharer(0), "eviction must clear the sharer bit");
    assert_eq!(e.state(), DirState::Uncached);
}

#[test]
fn lazy_ext_keeps_writes_invisible_until_release() {
    let w = Script::new(
        "t",
        vec![
            vec![
                Op::Read(addr(0, 0)),
                Op::Write(addr(0, 0)),
                Op::Compute(3000),
                // no release: the home must still think this is a clean read
            ],
            vec![Op::Read(addr(0, 4)), Op::Compute(3000)],
        ],
    );
    let (_, m) = machine(2, Protocol::LrcExt).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert_eq!(
        e.writer_count(),
        0,
        "the deferred write must not have been announced"
    );
    assert_eq!(e.state(), DirState::Shared);
    // Locally the writer holds a writable copy.
    assert_eq!(m.cache_state(0, LineAddr(0)), LineState::ReadWrite);
}

#[test]
fn lazy_ext_announces_at_release() {
    let w = Script::new(
        "t",
        vec![
            vec![
                Op::Read(addr(0, 0)),
                Op::Write(addr(0, 0)),
                Op::Acquire(0),
                Op::Release(0),
                Op::Compute(3000),
            ],
            vec![Op::Read(addr(0, 4)), Op::Compute(5000)],
        ],
    );
    let (r, m) = machine(2, Protocol::LrcExt).run_keep(Box::new(w));
    let e = m.dir_entry(LineAddr(0)).expect("entry");
    assert!(e.is_writer(0), "release must announce the write");
    assert_eq!(e.state(), DirState::Weak);
    assert_eq!(r.stats.procs[1].notices_received, 1);
}

#[test]
fn write_through_keeps_home_memory_fresh() {
    // Under LRC the writer's coalescing buffer drains in the background —
    // by the end of the run its write-throughs must all be acknowledged
    // (visible as zero pending data in the result's accounting).
    let w = Script::new(
        "t",
        vec![vec![
            Op::Write(addr(0, 0)),
            Op::Write(addr(0, 1)),
            Op::Write(addr(1, 0)),
            Op::Compute(5000),
            Op::Acquire(0),
            Op::Release(0),
        ]],
    );
    let (r, m) = machine(1, Protocol::Lrc).run_keep(Box::new(w));
    assert!(r.stats.procs[0].traffic.write_data_msgs >= 1, "write-throughs flowed");
    // A sole writer's blocks stay Dirty (no notices pending, so its own
    // acquire leaves them cached) — and memory is nonetheless fresh because
    // the coalescing buffer drained and was acknowledged before the release
    // completed (the run would have deadlocked otherwise).
    for l in [0u64, 1] {
        let e = m.dir_entry(LineAddr(l)).expect("entry");
        assert_eq!(e.state(), DirState::Dirty, "line {l}");
        assert_eq!(e.dirty_owner(), Some(0), "line {l}");
    }
}

#[test]
fn fence_clears_pending_invals_without_lock_traffic() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0)), Op::Compute(3000)],
            vec![Op::Read(addr(0, 4)), Op::Compute(2000), Op::Fence, Op::Compute(2000)],
        ],
    );
    let (r, m) = machine(2, Protocol::Lrc).run_keep(Box::new(w));
    assert!(m.pending_invals(1).is_empty(), "fence drained the notices");
    assert_eq!(m.cache_state(1, LineAddr(0)), LineState::Invalid);
    assert_eq!(r.stats.procs[1].lock_acquires, 0, "no lock involved");
}

//! Property tests for the directory state machine (paper Figure 1).

use lrc_core::{DirEntry, DirState};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    AddSharer(usize),
    AddWriter(usize),
    Remove(usize),
    Demote(usize),
    RemoveAllExcept(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::AddSharer),
        (0usize..64).prop_map(Op::AddWriter),
        (0usize..64).prop_map(Op::Remove),
        (0usize..64).prop_map(Op::Demote),
        (0usize..64).prop_map(Op::RemoveAllExcept),
    ]
}

proptest! {
    /// Structural invariants hold after any operation sequence: writers and
    /// notified are subsets of sharers, counters equal popcounts, and the
    /// derived state matches the paper's definition.
    #[test]
    fn directory_invariants(ops in prop::collection::vec(op(), 0..300)) {
        let mut e = DirEntry::new();
        for o in ops {
            match o {
                Op::AddSharer(n) => e.add_sharer(n),
                Op::AddWriter(n) => e.add_writer(n),
                Op::Remove(n) => e.remove(n),
                Op::Demote(n) => e.demote_writer(n),
                Op::RemoveAllExcept(n) => {
                    e.remove_all_except(n);
                }
            }
            prop_assert_eq!(e.writers() & !e.sharers(), 0);
            prop_assert_eq!(e.notified() & !e.sharers(), 0);
            prop_assert_eq!(e.sharer_count(), e.sharers().count_ones());
            prop_assert_eq!(e.writer_count(), e.writers().count_ones());
            let expected = if e.sharer_count() == 0 {
                DirState::Uncached
            } else if e.writer_count() == 0 {
                DirState::Shared
            } else if e.sharer_count() == 1 {
                DirState::Dirty
            } else {
                DirState::Weak
            };
            prop_assert_eq!(e.state(), expected);
            // Dirty always has a well-defined owner; other states never do.
            prop_assert_eq!(e.dirty_owner().is_some(), e.state() == DirState::Dirty);
        }
    }

    /// `unnotified_others` never includes the requester or already-notified
    /// sharers, and marking everyone notified empties it.
    #[test]
    fn notice_targets_are_sound(
        sharers in prop::collection::vec(0usize..64, 1..10),
        requester in 0usize..64,
    ) {
        let mut e = DirEntry::new();
        for &s in &sharers {
            e.add_sharer(s);
        }
        e.add_writer(requester);
        let targets = e.unnotified_others(requester);
        prop_assert_eq!(targets & (1 << requester), 0);
        prop_assert_eq!(targets & !e.sharers(), 0);
        for n in lrc_core::nodes_in(targets) {
            e.mark_notified(n);
        }
        prop_assert_eq!(e.unnotified_others(requester), 0);
    }
}

//! Property tests for the directory state machine (paper Figure 1),
//! driven by the simulation kernel's deterministic PRNG.

use lrc_core::{DirEntry, DirState, NodeSet};
use lrc_sim::Rng;

#[derive(Debug, Clone, Copy)]
enum Op {
    AddSharer(usize),
    AddWriter(usize),
    Remove(usize),
    Demote(usize),
    RemoveAllExcept(usize),
}

fn random_op(rng: &mut Rng) -> Op {
    let n = rng.below(256) as usize;
    match rng.below(5) {
        0 => Op::AddSharer(n),
        1 => Op::AddWriter(n),
        2 => Op::Remove(n),
        3 => Op::Demote(n),
        _ => Op::RemoveAllExcept(n),
    }
}

/// Structural invariants hold after any operation sequence: writers and
/// notified are subsets of sharers, counters equal popcounts, and the
/// derived state matches the paper's definition.
#[test]
fn directory_invariants() {
    let mut rng = Rng::new(0x5eed_0d01);
    for _ in 0..40 {
        let len = rng.below(300) as usize;
        let mut e = DirEntry::new();
        for _ in 0..len {
            match random_op(&mut rng) {
                Op::AddSharer(n) => e.add_sharer(n),
                Op::AddWriter(n) => e.add_writer(n),
                Op::Remove(n) => e.remove(n),
                Op::Demote(n) => e.demote_writer(n),
                Op::RemoveAllExcept(n) => {
                    e.remove_all_except(n);
                }
            }
            assert!((e.writers() & !e.sharers()).is_empty());
            assert!((e.notified() & !e.sharers()).is_empty());
            assert_eq!(e.sharer_count(), e.sharers().count_ones());
            assert_eq!(e.writer_count(), e.writers().count_ones());
            let expected = if e.sharer_count() == 0 {
                DirState::Uncached
            } else if e.writer_count() == 0 {
                DirState::Shared
            } else if e.sharer_count() == 1 {
                DirState::Dirty
            } else {
                DirState::Weak
            };
            assert_eq!(e.state(), expected);
            // Dirty always has a well-defined owner; other states never do.
            assert_eq!(e.dirty_owner().is_some(), e.state() == DirState::Dirty);
        }
    }
}

/// `unnotified_others` never includes the requester or already-notified
/// sharers, and marking everyone notified empties it.
#[test]
fn notice_targets_are_sound() {
    let mut rng = Rng::new(0x5eed_0d02);
    for _ in 0..100 {
        let requester = rng.below(256) as usize;
        let nsharers = 1 + rng.below(9) as usize;
        let mut e = DirEntry::new();
        for _ in 0..nsharers {
            e.add_sharer(rng.below(256) as usize);
        }
        e.add_writer(requester);
        let targets = e.unnotified_others(requester);
        assert!(!targets.contains(requester));
        assert!((targets & !e.sharers()).is_empty());
        for n in lrc_core::nodes_in(targets) {
            e.mark_notified(n);
        }
        assert_eq!(e.unnotified_others(requester), NodeSet::EMPTY);
    }
}

//! Tests for the structured trace layer: record content, filters, ring
//! capacity, ordering guarantees, and the deprecated legacy entry point.

use lrc_core::{Machine, RecData, TraceFilter, TraceRecord};
use lrc_sim::{MachineConfig, Op, Protocol, Script};

fn addr(line: u64, word: u64) -> u64 {
    line * 128 + word * 4
}

/// Send records only, in trace order.
fn sends(trace: &[TraceRecord]) -> Vec<&TraceRecord> {
    trace.iter().filter(|r| matches!(r.data, RecData::Send { .. })).collect()
}

#[test]
fn trace_records_the_weak_transition_story() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0)), Op::Compute(2000)],
            vec![Op::Read(addr(0, 4)), Op::Compute(3000)],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Lrc)
        .with_max_cycles(10_000_000)
        .with_trace_filter(TraceFilter::line(0).sends_only(), 1024);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    assert!(!trace.is_empty());
    // The story must contain, in order: P1's read request, P0's write
    // request, and a write notice to P1.
    let names: Vec<&str> = trace.iter().map(|r| r.name()).collect();
    let read_pos = names.iter().position(|&n| n == "ReadReq");
    let write_pos = names.iter().position(|&n| n == "WriteReq");
    let notice_pos = names.iter().position(|&n| n == "WriteNotice");
    assert!(read_pos.is_some(), "{names:?}");
    assert!(write_pos.is_some(), "{names:?}");
    let notice = notice_pos.expect("weak transition sends a notice");
    assert!(notice > write_pos.unwrap(), "notice follows the write request");
    // The notice goes to the reader.
    let RecData::Send { dst, .. } = trace[notice].data else {
        panic!("sends_only filter kept a non-send: {:?}", trace[notice]);
    };
    assert_eq!(dst, 1);
}

#[test]
fn trace_is_monotone_per_source_node() {
    // The strong ordering guarantee the old test only gestured at: within
    // one emitting node, record timestamps never go backwards, and the
    // global (at, seq) order returned by trace_records() is strictly
    // increasing.
    let w = Script::new(
        "t",
        vec![
            vec![Op::Acquire(0), Op::Write(addr(0, 0)), Op::Release(0), Op::Barrier(0)],
            vec![Op::Acquire(0), Op::Read(addr(0, 0)), Op::Release(0), Op::Barrier(0)],
            vec![Op::Read(addr(1, 0)), Op::Write(addr(2, 0)), Op::Barrier(0)],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(3), Protocol::Lrc)
        .with_max_cycles(10_000_000)
        .with_trace_filter(TraceFilter::all(), 1 << 16);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    assert!(trace.len() > 20, "expected a substantial trace, got {}", trace.len());
    let mut last_at_per_node = [0u64; 3];
    let mut last_key = (0u64, 0u64);
    for (i, r) in trace.iter().enumerate() {
        assert!(r.node < 3, "{r:?}");
        assert!(
            r.at >= last_at_per_node[r.node],
            "node {} went backwards at index {i}: {} < {} ({r})",
            r.node,
            r.at,
            last_at_per_node[r.node],
        );
        last_at_per_node[r.node] = r.at;
        let key = (r.at, r.seq);
        if i > 0 {
            assert!(key > last_key, "global order not strictly increasing at {i}");
        }
        last_key = key;
    }
}

#[test]
fn trace_filter_restricts_to_one_line() {
    let w = Script::new(
        "t",
        vec![
            vec![
                Op::Read(addr(0, 0)),
                Op::Read(addr(1, 0)),
                Op::Read(addr(2, 0)),
            ],
            vec![],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Erc)
        .with_max_cycles(10_000_000)
        .with_trace_filter(TraceFilter::line(1), 1024);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    for rec in &trace {
        assert_eq!(rec.line(), Some(1), "{rec:?}");
    }
    assert!(!trace.is_empty());
}

#[test]
fn trace_filter_restricts_to_nodes() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Read(addr(0, 0))],
            vec![Op::Read(addr(1, 0))],
            vec![Op::Read(addr(2, 0))],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(3), Protocol::Erc)
        .with_max_cycles(10_000_000)
        .with_trace_filter(TraceFilter::all().with_nodes([2]), 1024);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    assert!(!trace.is_empty());
    for rec in &trace {
        let touches_p2 = match rec.data {
            RecData::Send { src, dst, .. } | RecData::Recv { src, dst, .. } => {
                src == 2 || dst == 2
            }
            _ => rec.node == 2,
        };
        assert!(touches_p2, "{rec:?}");
    }
}

#[test]
fn trace_cap_is_a_ring_buffer() {
    let ops: Vec<Op> = (0..64).map(|l| Op::Read(addr(l, 0))).collect();
    let w = Script::new("t", vec![ops, vec![]]);
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Erc)
        .with_max_cycles(10_000_000)
        .with_trace_filter(TraceFilter::all().sends_only(), 8);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    assert_eq!(trace.len(), 8, "capped at 8");
    // Kept the most recent events: the last traced record is a late one.
    assert!(trace.last().unwrap().at >= trace.first().unwrap().at);
}

#[test]
fn tracing_off_returns_empty() {
    let w = Script::new("t", vec![vec![Op::Read(0)]]);
    let (_, m) = Machine::new(MachineConfig::paper_default(1), Protocol::Sc)
        .with_max_cycles(10_000_000)
        .run_keep(Box::new(w));
    assert!(m.trace_records().is_empty());
    assert!(m.time_series().is_none());
    assert!(m.flight_tail().is_empty());
}

#[test]
#[allow(deprecated)]
fn legacy_with_trace_still_works() {
    // The deprecated shim must behave like the old API: sends only,
    // optionally restricted to one line.
    let w = Script::new(
        "t",
        vec![vec![Op::Read(addr(0, 0)), Op::Read(addr(1, 0))], vec![]],
    );
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Erc)
        .with_max_cycles(10_000_000)
        .with_trace(Some(1), 1024);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    assert!(!trace.is_empty());
    for rec in &trace {
        assert!(matches!(rec.data, RecData::Send { .. }), "{rec:?}");
        assert_eq!(rec.line(), Some(1), "{rec:?}");
    }
    assert_eq!(sends(&trace).len(), trace.len());
}

#[test]
fn full_trace_contains_sync_and_state_records() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Acquire(0), Op::Write(addr(0, 0)), Op::Release(0)],
            vec![Op::Acquire(0), Op::Read(addr(0, 0)), Op::Release(0)],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Lrc)
        .with_max_cycles(10_000_000)
        .with_trace_filter(TraceFilter::all(), 1 << 16);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace_records();
    let has = |cat: &str| trace.iter().any(|r| r.category() == cat);
    assert!(has("send"), "no send records");
    assert!(has("recv"), "no recv records");
    assert!(has("sync"), "no sync records");
    assert!(has("state"), "no state records");
}

//! Tests for the structured protocol trace.

use lrc_core::{Machine, MsgKind};
use lrc_sim::{MachineConfig, Op, Protocol, Script};

fn addr(line: u64, word: u64) -> u64 {
    line * 128 + word * 4
}

#[test]
fn trace_records_the_weak_transition_story() {
    let w = Script::new(
        "t",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0)), Op::Compute(2000)],
            vec![Op::Read(addr(0, 4)), Op::Compute(3000)],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Lrc)
        .with_max_cycles(10_000_000)
        .with_trace(Some(0), 1024);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace();
    assert!(!trace.is_empty());
    // The story must contain, in order: P1's read request, P0's write
    // request, and a write notice to P1.
    let kinds: Vec<&MsgKind> = trace.iter().map(|e| &e.kind).collect();
    let read_pos = kinds.iter().position(|k| matches!(k, MsgKind::ReadReq { .. }));
    let write_pos = kinds.iter().position(|k| matches!(k, MsgKind::WriteReq { .. }));
    let notice_pos = kinds.iter().position(|k| matches!(k, MsgKind::WriteNotice { .. }));
    assert!(read_pos.is_some(), "{kinds:?}");
    assert!(write_pos.is_some(), "{kinds:?}");
    let notice = notice_pos.expect("weak transition sends a notice");
    assert!(notice > write_pos.unwrap(), "notice follows the write request");
    // The notice goes to the reader.
    let notice_ev = &trace[notice];
    assert_eq!(notice_ev.dst, 1);
    // Timestamps are nondecreasing... per send order they may interleave
    // across nodes; at minimum the first event is not after the last.
    assert!(trace.first().unwrap().at <= trace.last().unwrap().at);
}

#[test]
fn trace_filter_restricts_to_one_line() {
    let w = Script::new(
        "t",
        vec![
            vec![
                Op::Read(addr(0, 0)),
                Op::Read(addr(1, 0)),
                Op::Read(addr(2, 0)),
            ],
            vec![],
        ],
    );
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Erc)
        .with_max_cycles(10_000_000)
        .with_trace(Some(1), 1024);
    let (_, m) = m.run_keep(Box::new(w));
    for ev in m.trace() {
        assert_eq!(ev.kind.line(), Some(lrc_sim::LineAddr(1)), "{ev:?}");
    }
    assert!(!m.trace().is_empty());
}

#[test]
fn trace_cap_is_a_ring_buffer() {
    let ops: Vec<Op> = (0..64).map(|l| Op::Read(addr(l, 0))).collect();
    let w = Script::new("t", vec![ops, vec![]]);
    let m = Machine::new(MachineConfig::paper_default(2), Protocol::Erc)
        .with_max_cycles(10_000_000)
        .with_trace(None, 8);
    let (_, m) = m.run_keep(Box::new(w));
    let trace = m.trace();
    assert_eq!(trace.len(), 8, "capped at 8");
    // Kept the most recent events: the last traced line is a late one.
    assert!(trace.last().unwrap().at >= trace.first().unwrap().at);
}

#[test]
fn tracing_off_returns_empty() {
    let w = Script::new("t", vec![vec![Op::Read(0)]]);
    let (_, m) = Machine::new(MachineConfig::paper_default(1), Protocol::Sc)
        .with_max_cycles(10_000_000)
        .run_keep(Box::new(w));
    assert!(m.trace().is_empty());
}

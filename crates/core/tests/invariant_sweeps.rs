//! Run workload-like scenarios with the global invariant checker armed:
//! any coherence violation (double writable copies under the eager
//! protocols, copies unknown to the directory, directory-set corruption)
//! panics with a machine dump.

use lrc_core::Machine;
use lrc_sim::{MachineConfig, Op, Protocol, Rng, Script};

fn checked(n: usize, proto: Protocol) -> Machine {
    Machine::new(MachineConfig::paper_default(n), proto)
        .with_max_cycles(200_000_000)
        .with_invariant_checks(64)
}

/// A dense random mix of reads/writes/locks/barriers over a small line set:
/// maximum protocol-state churn per event.
fn churn_script(procs: usize, seed: u64, len: usize) -> Script {
    let mut rng = Rng::new(seed);
    let mut streams = Vec::new();
    let rounds = 3u32;
    for _ in 0..procs {
        let mut ops = Vec::new();
        let mut round = 0;
        for i in 0..len {
            let a = rng.below(24) * 128 + rng.below(32) * 4;
            match rng.below(10) {
                0..=3 => ops.push(Op::Read(a)),
                4..=6 => ops.push(Op::Write(a)),
                7 => {
                    let l = rng.below(4) as u32;
                    ops.push(Op::Acquire(l));
                    ops.push(Op::Read(a));
                    ops.push(Op::Write(a));
                    ops.push(Op::Release(l));
                }
                8 => ops.push(Op::Compute(1 + rng.below(30) as u32)),
                _ => {
                    if round < rounds && i > len / 4 {
                        ops.push(Op::Barrier(0));
                        round += 1;
                    }
                }
            }
        }
        while round < rounds {
            ops.push(Op::Barrier(0));
            round += 1;
        }
        streams.push(ops);
    }
    Script::new("churn", streams)
}

#[test]
fn churn_honors_invariants_under_all_protocols() {
    for proto in Protocol::ALL {
        for seed in [1u64, 2, 3] {
            let w = churn_script(6, seed, 120);
            let r = checked(6, proto).run(Box::new(w));
            assert!(r.stats.total_cycles > 0, "{proto}/{seed}");
        }
    }
}

#[test]
fn tiny_cache_eviction_storm_honors_invariants() {
    // A 4-line cache with a 24-line working set: constant evictions racing
    // with coherence traffic.
    for proto in Protocol::ALL {
        let mut cfg = MachineConfig::paper_default(4);
        cfg.cache_size = 4 * cfg.line_size;
        let w = churn_script(4, 99, 150);
        let r = Machine::new(cfg, proto)
            .with_max_cycles(200_000_000)
            .with_invariant_checks(32)
            .run(Box::new(w));
        assert!(r.stats.total_cycles > 0, "{proto}");
    }
}

#[test]
fn application_kernels_honor_invariants() {
    use lrc_workloads::{Scale, WorkloadKind};
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Gauss, WorkloadKind::Barnes] {
        for proto in Protocol::ALL {
            let r = checked(8, proto).run(kind.build(8, Scale::Tiny));
            assert!(r.stats.total_cycles > 0, "{kind}/{proto}");
        }
    }
}

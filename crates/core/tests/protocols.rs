//! Cross-protocol scenario tests: small scripted programs exercising the
//! behaviors the paper describes, checked against all four protocols.

use lrc_core::{DirState, Machine, RunResult};
use lrc_sim::{MachineConfig, Op, Protocol, Script};

fn cfg(n: usize) -> MachineConfig {
    MachineConfig::paper_default(n)
}

fn run(protocol: Protocol, cfg: MachineConfig, w: Script) -> RunResult {
    Machine::new(cfg, protocol)
        .with_max_cycles(50_000_000)
        .run(Box::new(w))
}

/// Addresses on distinct lines/pages for a 128-byte-line machine.
fn addr(line: u64, word: u64) -> u64 {
    line * 128 + word * 4
}

#[test]
fn compute_only_single_proc() {
    for p in Protocol::ALL {
        let w = Script::new("c", vec![vec![Op::Compute(1000)]]);
        let r = run(p, cfg(1), w);
        assert_eq!(r.stats.procs[0].finish_time, 1000, "{p}");
        assert_eq!(r.stats.procs[0].breakdown.cpu, 1000, "{p}");
        assert_eq!(r.stats.total_cycles, 1000, "{p}");
    }
}

#[test]
fn breakdown_accounts_every_cycle() {
    // A mixed script: reads, writes, locks, barriers on 2 procs.
    for p in Protocol::ALL {
        let w = Script::new(
            "mixed",
            vec![
                vec![
                    Op::Compute(10),
                    Op::Read(addr(0, 0)),
                    Op::Write(addr(1, 0)),
                    Op::Acquire(0),
                    Op::Write(addr(2, 0)),
                    Op::Release(0),
                    Op::Barrier(0),
                    Op::Read(addr(3, 0)),
                ],
                vec![
                    Op::Acquire(0),
                    Op::Read(addr(2, 1)),
                    Op::Release(0),
                    Op::Barrier(0),
                    Op::Write(addr(0, 5)),
                ],
            ],
        );
        let r = run(p, cfg(2), w);
        for (i, ps) in r.stats.procs.iter().enumerate() {
            assert_eq!(
                ps.breakdown.total(),
                ps.finish_time,
                "{p}: proc {i} breakdown {:?} != finish {}",
                ps.breakdown,
                ps.finish_time
            );
        }
    }
}

#[test]
fn remote_read_miss_costs_hundreds_of_cycles() {
    for p in Protocol::ALL {
        // Page 1 homes at node 1 under round-robin placement; P0 reads it.
        let a = 4096;
        let w = Script::new("rd", vec![vec![Op::Read(a)], vec![]]);
        let r = run(p, cfg(2), w);
        let ps = &r.stats.procs[0];
        assert_eq!(ps.read_misses, 1, "{p}");
        assert!(
            ps.breakdown.read > 100 && ps.breakdown.read < 400,
            "{p}: read stall {}",
            ps.breakdown.read
        );
    }
}

#[test]
fn cache_hit_after_fill() {
    for p in Protocol::ALL {
        let ops: Vec<Op> = std::iter::once(Op::Read(addr(0, 0)))
            .chain((0..31).map(|w| Op::Read(addr(0, w + 1))))
            .collect();
        let r = run(p, cfg(1), Script::new("hits", vec![ops]));
        let ps = &r.stats.procs[0];
        assert_eq!(ps.read_misses, 1, "{p}: only the first access misses");
        assert_eq!(ps.refs, 32, "{p}");
    }
}

#[test]
fn lock_handoff_all_protocols() {
    for p in Protocol::ALL {
        let w = Script::new(
            "handoff",
            vec![
                vec![Op::Acquire(0), Op::Write(addr(0, 0)), Op::Release(0)],
                vec![Op::Acquire(0), Op::Read(addr(0, 0)), Op::Release(0)],
            ],
        );
        let r = run(p, cfg(2), w);
        assert_eq!(r.stats.procs[0].lock_acquires, 1, "{p}");
        assert_eq!(r.stats.procs[1].lock_acquires, 1, "{p}");
        assert!(r.stats.procs.iter().all(|s| s.breakdown.sync > 0), "{p}");
    }
}

#[test]
fn barriers_synchronize_everyone() {
    for p in Protocol::ALL {
        let mk = |extra: u32| {
            vec![
                Op::Compute(extra),
                Op::Barrier(0),
                Op::Compute(10),
                Op::Barrier(1),
            ]
        };
        let w = Script::new("bar", vec![mk(5), mk(500), mk(50), mk(5000)]);
        let r = run(p, cfg(4), w);
        for ps in &r.stats.procs {
            assert_eq!(ps.barriers, 2, "{p}");
        }
        // The slowpoke (5000 cycles) gates everyone: all finish after 5010.
        for ps in &r.stats.procs {
            assert!(ps.finish_time >= 5010, "{p}: {}", ps.finish_time);
        }
    }
}

#[test]
fn lazy_sends_write_notices_and_invalidates_at_acquire() {
    // P1 caches a line; P0 writes it (weak transition → notice to P1);
    // P1 then acquires a lock, which must invalidate its copy.
    let w = Script::new(
        "weak",
        vec![
            vec![
                Op::Compute(400), // let P1 cache the line first
                Op::Write(addr(0, 0)),
                Op::Acquire(0),
                Op::Release(0),
            ],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(2000), // wait for the notice to land
                Op::Acquire(1),
                Op::Release(1),
                Op::Read(addr(0, 1)), // must re-miss: copy was invalidated
            ],
        ],
    );
    let r = run(Protocol::Lrc, cfg(2), w);
    let p1 = &r.stats.procs[1];
    assert_eq!(p1.notices_received, 1, "P1 must receive exactly one write notice");
    assert!(p1.acquire_invalidations >= 1, "acquire must invalidate");
    assert_eq!(p1.read_misses, 2, "second read must miss after invalidation");
}

#[test]
fn eager_invalidates_immediately() {
    let w = Script::new(
        "inval",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0))],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(2000),
                Op::Read(addr(0, 1)), // invalidated eagerly → miss
            ],
        ],
    );
    let r = run(Protocol::Erc, cfg(2), w);
    let p1 = &r.stats.procs[1];
    assert_eq!(p1.eager_invalidations, 1);
    assert_eq!(p1.read_misses, 2);
    assert_eq!(p1.notices_received, 0);
}

#[test]
fn lazy_copy_survives_until_acquire() {
    // Same as above but under LRC and *without* an acquire: P1's copy must
    // survive the remote write, so the second read hits.
    let w = Script::new(
        "survive",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0))],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(2000),
                Op::Read(addr(0, 1)),
            ],
        ],
    );
    let r = run(Protocol::Lrc, cfg(2), w);
    let p1 = &r.stats.procs[1];
    assert_eq!(p1.read_misses, 1, "no acquire → no invalidation → hit");
}

#[test]
fn erc_read_of_dirty_line_is_three_hop() {
    let w = Script::new(
        "3hop",
        vec![
            vec![Op::Write(addr(32, 0))], // page 1 homes at node 1... line 32*128=4096
            vec![],
            vec![Op::Compute(2000), Op::Read(addr(32, 0))],
        ],
    );
    let r = run(Protocol::Erc, cfg(3), w);
    assert_eq!(r.stats.procs[2].three_hop, 1, "dirty read forwards to owner");
}

#[test]
fn lazy_read_of_dirty_line_is_two_hop() {
    let w = Script::new(
        "2hop",
        vec![
            vec![Op::Write(addr(32, 0))],
            vec![],
            vec![Op::Compute(2000), Op::Read(addr(32, 0))],
        ],
    );
    let r = run(Protocol::Lrc, cfg(3), w);
    assert_eq!(r.stats.procs[2].three_hop, 0, "lazy never forwards reads");
    // The reader joined a weak block and must be told.
    assert_eq!(r.stats.procs[2].read_misses, 1);
}

#[test]
fn false_sharing_ping_pong_favors_lazy() {
    // Two processors repeatedly read-modify-write *different words of the
    // same line* with no true sharing: the textbook false-sharing pattern.
    // Under ERC the line ping-pongs (each processor's reads keep missing
    // because the other's writes invalidate its copy); under LRC both hold
    // their copies and write concurrently.
    let n_iters = 200;
    let mk = |word: u64| -> Vec<Op> {
        (0..n_iters)
            .flat_map(|_| [Op::Read(addr(0, word)), Op::Write(addr(0, word)), Op::Compute(20)])
            .collect()
    };
    let w_e = Script::new("fs", vec![mk(0), mk(1)]);
    let w_l = Script::new("fs", vec![mk(0), mk(1)]);
    let erc = run(Protocol::Erc, cfg(2), w_e);
    let lrc = run(Protocol::Lrc, cfg(2), w_l);
    assert!(
        lrc.stats.total_cycles * 10 < erc.stats.total_cycles * 8,
        "lazy should win clearly on false sharing: lazy={} eager={}",
        lrc.stats.total_cycles,
        erc.stats.total_cycles
    );
}

#[test]
fn write_after_read_stalls_eager_not_lazy() {
    // Read a line (cached read-only), then write it: ERC's write buffer
    // entry waits for ownership; LRC retires immediately. With a burst of
    // such writes, ERC accumulates write-buffer stalls.
    let lines: Vec<u64> = (0..16).collect();
    let mk = || -> Vec<Op> {
        let mut v: Vec<Op> = lines.iter().map(|&l| Op::Read(addr(l, 0))).collect();
        v.extend(lines.iter().map(|&l| Op::Write(addr(l, 0))));
        v
    };
    let erc = run(Protocol::Erc, cfg(2), Script::new("war", vec![mk(), mk()]));
    let lrc = run(Protocol::Lrc, cfg(2), Script::new("war", vec![mk(), mk()]));
    let erc_wstall: u64 = erc.stats.procs.iter().map(|p| p.breakdown.write).sum();
    let lrc_wstall: u64 = lrc.stats.procs.iter().map(|p| p.breakdown.write).sum();
    assert!(
        lrc_wstall < erc_wstall,
        "lazy write-after-read must stall less: lazy={lrc_wstall} eager={erc_wstall}"
    );
}

#[test]
fn sc_stalls_on_every_write_miss() {
    let w = Script::new(
        "scw",
        vec![(0..8).map(|l| Op::Write(addr(l, 0))).collect::<Vec<_>>()],
    );
    let r = run(Protocol::Sc, cfg(1), w);
    let ps = &r.stats.procs[0];
    assert_eq!(ps.write_misses, 8);
    assert!(ps.breakdown.write > 8 * 100, "SC write stalls: {}", ps.breakdown.write);
}

#[test]
fn relaxed_protocols_hide_write_latency() {
    let script = |_: ()| {
        Script::new(
            "wlat",
            vec![(0..4)
                .flat_map(|l| [Op::Write(addr(l, 0)), Op::Compute(400)])
                .collect::<Vec<_>>()],
        )
    };
    let sc = run(Protocol::Sc, cfg(1), script(()));
    let erc = run(Protocol::Erc, cfg(1), script(()));
    assert!(
        erc.stats.total_cycles < sc.stats.total_cycles,
        "ERC overlaps writes with compute: erc={} sc={}",
        erc.stats.total_cycles,
        sc.stats.total_cycles
    );
}

#[test]
fn release_waits_for_writes_to_perform() {
    // Writer releases a lock: the release must not complete before its
    // writes are globally performed. We verify completion and that the
    // directory reflects the final state.
    for p in [Protocol::Erc, Protocol::Lrc, Protocol::LrcExt] {
        let w = Script::new(
            "fence",
            vec![vec![
                Op::Acquire(0),
                Op::Write(addr(5, 0)),
                Op::Write(addr(6, 0)),
                Op::Write(addr(7, 0)),
                Op::Release(0),
            ]],
        );
        let r = run(p, cfg(1), w);
        assert!(r.stats.procs[0].breakdown.sync > 0, "{p}: fence must cost sync time");
    }
}

#[test]
fn lazy_ext_defers_notices_to_release() {
    // P1 caches the line; P0 writes it but doesn't release. Under LRC-EXT
    // the notice must NOT arrive until P0's release.
    let w = Script::new(
        "defer",
        vec![
            vec![
                Op::Compute(400),
                Op::Write(addr(0, 0)),
                Op::Compute(3000), // long quiet period: no notice should fire
                Op::Acquire(0),
                Op::Release(0),    // ← notices go out here
            ],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(2000),
                Op::Acquire(1), // before P0's release: nothing pending
                Op::Release(1),
                Op::Read(addr(0, 1)), // still a hit!
            ],
        ],
    );
    let r = run(Protocol::LrcExt, cfg(2), w);
    let p1 = &r.stats.procs[1];
    assert_eq!(
        p1.read_misses, 1,
        "notice deferred past P1's acquire → copy survives"
    );

    // Same scenario under plain LRC: the eager notice lands before P1's
    // acquire, so the second read misses.
    let w2 = Script::new(
        "defer",
        vec![
            vec![
                Op::Compute(400),
                Op::Write(addr(0, 0)),
                Op::Compute(3000),
                Op::Acquire(0),
                Op::Release(0),
            ],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(2000),
                Op::Acquire(1),
                Op::Release(1),
                Op::Read(addr(0, 1)),
            ],
        ],
    );
    let r2 = run(Protocol::Lrc, cfg(2), w2);
    assert_eq!(r2.stats.procs[1].read_misses, 2, "plain LRC notice is eager");
}

#[test]
fn lazy_ext_release_is_expensive() {
    // Writing many lines then releasing: LRC-EXT pays the whole notice
    // burst at the release, so its sync time must exceed plain LRC's.
    let mk = || -> Vec<Op> {
        let mut v = vec![Op::Acquire(0)];
        for l in 0..32 {
            v.push(Op::Write(addr(l, 0)));
            v.push(Op::Compute(50));
        }
        v.push(Op::Release(0));
        v
    };
    // A second processor shares all the lines so notices are actually due.
    let reader = || -> Vec<Op> {
        (0..32).map(|l| Op::Read(addr(l, 4))).collect()
    };
    let lrc = run(
        Protocol::Lrc,
        cfg(2),
        Script::new("rel", vec![mk(), reader()]),
    );
    let ext = run(
        Protocol::LrcExt,
        cfg(2),
        Script::new("rel", vec![mk(), reader()]),
    );
    let lrc_sync = lrc.stats.procs[0].breakdown.sync;
    let ext_sync = ext.stats.procs[0].breakdown.sync;
    assert!(
        ext_sync > lrc_sync,
        "deferred notices inflate release time: ext={ext_sync} lrc={lrc_sync}"
    );
}

#[test]
fn write_buffer_full_stalls() {
    // A burst of writes to distinct lines with no compute in between:
    // more than 4 in flight must stall the 4-entry write buffer.
    let w = Script::new(
        "wbfull",
        vec![(0..12).map(|l| Op::Write(addr(l, 0))).collect::<Vec<_>>()],
    );
    let r = run(Protocol::Erc, cfg(1), w);
    assert!(
        r.stats.procs[0].breakdown.write > 0,
        "12 back-to-back write misses must fill a 4-entry buffer"
    );
}

#[test]
fn determinism_identical_runs() {
    let mk = || {
        Script::new(
            "det",
            vec![
                vec![
                    Op::Acquire(0),
                    Op::Write(addr(0, 0)),
                    Op::Release(0),
                    Op::Barrier(0),
                    Op::Read(addr(1, 0)),
                ],
                vec![
                    Op::Acquire(0),
                    Op::Write(addr(0, 1)),
                    Op::Release(0),
                    Op::Barrier(0),
                    Op::Read(addr(2, 0)),
                ],
                vec![Op::Barrier(0), Op::Write(addr(3, 0))],
            ],
        )
    };
    for p in Protocol::ALL {
        let a = run(p, cfg(3), mk());
        let b = run(p, cfg(3), mk());
        assert_eq!(a.stats.total_cycles, b.stats.total_cycles, "{p}");
        for (x, y) in a.stats.procs.iter().zip(&b.stats.procs) {
            assert_eq!(x.finish_time, y.finish_time, "{p}");
            assert_eq!(x.refs, y.refs, "{p}");
            assert_eq!(x.traffic.total_msgs(), y.traffic.total_msgs(), "{p}");
        }
    }
}

#[test]
fn directory_reverts_after_acquire_invalidations() {
    // After both the writer and the reader invalidate their copies, the
    // block must be Uncached again.
    let w = Script::new(
        "revert",
        vec![
            vec![
                Op::Compute(400),
                Op::Write(addr(0, 0)),
                Op::Compute(3000),
                Op::Acquire(0),
                Op::Release(0),
            ],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(3500),
                Op::Acquire(1),
                Op::Release(1),
            ],
        ],
    );
    // Run manually so we can inspect the directory afterwards... the public
    // API returns only stats, so assert via behavior: after both acquires,
    // a fresh write by P1 must go Dirty (grant Immediate, no notices).
    let r = run(Protocol::Lrc, cfg(2), w);
    // Both sides invalidated at their acquires:
    assert!(r.stats.procs[0].acquire_invalidations >= 1);
    assert!(r.stats.procs[1].acquire_invalidations >= 1);
}

#[test]
fn dirty_eviction_writes_back_under_erc() {
    // Tiny cache: 2 sets. Write line 0, then write lines that conflict,
    // forcing a dirty eviction and a write-back.
    let mut c = cfg(1);
    c.cache_size = 2 * c.line_size; // 2 lines, direct-mapped
    let w = Script::new(
        "evict",
        vec![vec![
            Op::Write(addr(0, 0)),
            Op::Write(addr(2, 0)), // same set as line 0 (2 sets)
            Op::Write(addr(4, 0)), // evicts line 0 or 2
            Op::Read(addr(0, 0)),  // may re-miss
        ]],
    );
    let r = run(Protocol::Erc, c, w);
    let ps = &r.stats.procs[0];
    assert!(ps.write_misses >= 3);
    assert!(ps.traffic.write_data_msgs >= 1, "dirty eviction must write back");
}

#[test]
fn weak_state_via_directory_inspection() {
    // Drive the machine manually (no run loop) to check Figure-1 states...
    // covered by unit tests in directory.rs; here we check the observable
    // protocol consequence instead: two concurrent writers both proceed
    // without invalidating each other under LRC.
    let w = Script::new(
        "multi-writer",
        vec![
            vec![Op::Read(addr(0, 0)), Op::Compute(500), Op::Write(addr(0, 0)), Op::Compute(100), Op::Read(addr(0, 0))],
            vec![Op::Read(addr(0, 1)), Op::Compute(500), Op::Write(addr(0, 1)), Op::Compute(100), Op::Read(addr(0, 1))],
        ],
    );
    let r = run(Protocol::Lrc, cfg(2), w);
    // Neither processor loses its copy: one miss each (the initial read).
    assert_eq!(r.stats.procs[0].read_misses, 1);
    assert_eq!(r.stats.procs[1].read_misses, 1);
}

#[test]
fn fence_applies_pending_invalidations() {
    let w = Script::new(
        "fence-op",
        vec![
            vec![Op::Compute(400), Op::Write(addr(0, 0))],
            vec![
                Op::Read(addr(0, 1)),
                Op::Compute(2000),
                Op::Fence,
                Op::Read(addr(0, 1)), // must miss after the fence
            ],
        ],
    );
    let r = run(Protocol::Lrc, cfg(2), w);
    assert_eq!(r.stats.procs[1].read_misses, 2, "fence must apply the invalidation");
}

#[test]
fn dir_state_types_are_exposed() {
    // Sanity that the public directory API is usable downstream.
    let mut e = lrc_core::DirEntry::new();
    e.add_writer(0);
    assert_eq!(e.state(), DirState::Dirty);
}

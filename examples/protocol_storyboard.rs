//! Protocol storyboard: record and print the exact message sequence of the
//! paper's core scenario — a block going Weak and being lazily invalidated —
//! side by side with the eager protocol's handling of the same program.
//!
//! ```sh
//! cargo run --release --example protocol_storyboard
//! ```

use lazy_rc::core::Machine;
use lazy_rc::prelude::*;
use lazy_rc::sim::LineAddr;

fn scenario() -> Script {
    Script::new(
        "storyboard",
        vec![
            // P0: after P1 has cached the line, write it; then acquire a
            // lock (invalidating its weak copy under the lazy protocol).
            vec![
                Op::Compute(500),
                Op::Write(0),
                Op::Compute(2500),
                Op::Acquire(0),
                Op::Release(0),
            ],
            // P1: read the line early; acquire later — the acquire is where
            // the lazy protocol applies the buffered write notice.
            vec![
                Op::Read(16),
                Op::Compute(3500),
                Op::Acquire(1),
                Op::Release(1),
                Op::Read(16),
            ],
        ],
    )
}

fn show(proto: Protocol) {
    println!("--- {} ---", proto.name());
    let machine = Machine::new(MachineConfig::paper_default(2), proto)
        .with_trace_filter(lazy_rc::trace::TraceFilter::line(0).sends_only(), 256);
    let (result, machine) = machine.run_keep(Box::new(scenario()));
    for rec in machine.trace_records() {
        println!("  {rec}");
    }
    let entry = machine.dir_entry(LineAddr(0));
    println!(
        "  final: {} cycles; line 0 directory = {:?}\n",
        result.stats.total_cycles,
        entry.map(|e| (e.state(), e.sharer_count(), e.writer_count())),
    );
}

fn main() {
    println!(
        "One falsely-shared line. P1 reads it, P0 writes it, both then\n\
         synchronize. Watch where each protocol invalidates:\n"
    );
    show(Protocol::Erc);
    show(Protocol::Lrc);
    println!(
        "Under eager RC the Invalidate goes out the moment P0 writes; under\n\
         lazy RC a WriteNotice is buffered and P1's copy dies only at its\n\
         acquire (the EvictNotify back to the home), letting P1 keep reading\n\
         its copy race-free until then."
    );
}

//! Protocol face-off: run the full seven-application suite under all four
//! protocols and print the paper's Figure-4/6-style normalized comparison,
//! plus a traffic summary.
//!
//! ```sh
//! cargo run --release --example protocol_faceoff -- [scale] [procs]
//! ```
//! Defaults to the `small` scale on 64 processors (a couple of minutes);
//! `medium` reproduces the shapes more faithfully.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{Scale, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);

    println!("suite face-off: scale={} procs={procs}", scale.name());
    println!("(execution time normalized to the sequentially consistent run)\n");
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>14}",
        "application", "eager", "lazy", "lazy-ext", "lazy wins?", "lazy MB on wire"
    );

    for kind in WorkloadKind::ALL {
        let mut cycles = Vec::new();
        let mut lazy_bytes = 0u64;
        for proto in Protocol::ALL {
            let cfg = MachineConfig::paper_default(procs);
            let w = kind.build(procs, scale);
            let r = Machine::new(cfg, proto).run(w);
            if proto == Protocol::Lrc {
                lazy_bytes = r.stats.aggregate_traffic().bytes;
            }
            cycles.push(r.stats.total_cycles);
        }
        let sc = cycles[0].max(1) as f64;
        let (e, l, x) = (
            cycles[1] as f64 / sc,
            cycles[2] as f64 / sc,
            cycles[3] as f64 / sc,
        );
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>10.2} {:>12} {:>11.1} MB",
            kind.name(),
            e,
            l,
            x,
            if l < e { "yes" } else { "no" },
            lazy_bytes as f64 / 1e6,
        );
    }
}

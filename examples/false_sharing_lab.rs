//! False-sharing laboratory: a controlled microbenchmark showing *why* the
//! lazy protocol wins when processors read-modify-write different words of
//! the same cache line.
//!
//! Two processors each own one word of a single 128-byte line and update it
//! in a loop with no true sharing whatsoever. Under eager release
//! consistency the line ping-pongs (every write invalidates the other's
//! copy, every read re-misses); under lazy release consistency both copies
//! survive until a synchronization acquire — which never touches this line.
//!
//! The example sweeps the number of falsely-sharing processors (2, 4, 8 —
//! up to the 32 words in a line) and prints the ping-pong cost.
//!
//! ```sh
//! cargo run --release --example false_sharing_lab
//! ```

use lazy_rc::prelude::*;

/// Build the microbenchmark: `sharers` processors RMW their own word of one
/// line, `iters` times, with a little compute in between; remaining
/// processors idle.
fn build(procs: usize, sharers: usize, iters: u32) -> Script {
    let mut streams: Vec<Vec<Op>> = Vec::with_capacity(procs);
    for p in 0..procs {
        if p < sharers {
            let addr = (p * 4) as u64; // word p of line 0
            let mut ops = Vec::with_capacity(iters as usize * 3);
            for _ in 0..iters {
                ops.push(Op::Read(addr));
                ops.push(Op::Compute(20));
                ops.push(Op::Write(addr));
                // Enough work between updates for the write buffer to
                // drain, so each round exercises the protocol rather than
                // the buffer's read forwarding.
                ops.push(Op::Compute(400));
            }
            streams.push(ops);
        } else {
            streams.push(vec![]);
        }
    }
    Script::new("false-sharing-lab", streams)
}

fn main() {
    let procs = 16;
    let iters = 300;
    println!("false-sharing microbenchmark: {iters} read-modify-writes per sharer\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>16} {:>16}",
        "sharers", "eager (cyc)", "lazy (cyc)", "lazy/eager", "eager misses", "lazy misses"
    );
    for sharers in [1, 2, 4, 8] {
        let mut row = Vec::new();
        for proto in [Protocol::Erc, Protocol::Lrc] {
            let cfg = MachineConfig::paper_default(procs);
            let w = build(procs, sharers, iters);
            let r = Machine::new(cfg, proto).run(Box::new(w));
            row.push((r.stats.total_cycles, r.stats.total_miss_count()));
        }
        let (ec, em) = row[0];
        let (lc, lm) = row[1];
        println!(
            "{:<8} {:>12} {:>12} {:>10.2} {:>16} {:>16}",
            sharers,
            ec,
            lc,
            lc as f64 / ec as f64,
            em,
            lm
        );
    }
    println!(
        "\nWith one writer there is nothing to fight over and the protocols\n\
         tie. As sharers are added, the eager protocol's misses grow with\n\
         every remote write while the lazy protocol's stay near the cold\n\
         minimum — the Table 2 false-sharing column turned into wall-clock."
    );
}

//! Migratory-data example: a counter protected by a lock, bouncing between
//! processors — the access pattern behind the paper's barnes-hut and
//! work-queue observations.
//!
//! Each processor repeatedly acquires the lock, read-modify-writes the
//! shared counter line, and releases. The critical section's length under
//! each protocol determines how fast the lock can hand off:
//!
//! * **eager**: the read inside the critical section is a 3-hop forward
//!   (the line is dirty at the previous holder) and the release must wait
//!   for the ownership round to complete;
//! * **lazy**: the read is a 2-hop fill from home memory (write-through
//!   keeps it fresh) and the write announcement overlaps the critical
//!   section.
//!
//! ```sh
//! cargo run --release --example migratory_lock
//! ```

use lazy_rc::prelude::*;

fn build(procs: usize, rounds: u32) -> Script {
    let counter = 0u64; // word 0 of line 0; the lock is id 0
    let streams: Vec<Vec<Op>> = (0..procs)
        .map(|_| {
            let mut ops = Vec::new();
            for _ in 0..rounds {
                ops.push(Op::Acquire(0));
                ops.push(Op::Read(counter));
                ops.push(Op::Compute(10));
                ops.push(Op::Write(counter));
                ops.push(Op::Release(0));
                ops.push(Op::Compute(50)); // think time outside the lock
            }
            ops
        })
        .collect();
    Script::new("migratory-lock", streams)
}

fn main() {
    println!("lock-protected counter, 20 rounds per processor\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "procs", "sc (cyc)", "eager (cyc)", "lazy (cyc)", "lazy-ext (cyc)"
    );
    for procs in [2usize, 4, 8, 16, 32] {
        let mut cells = Vec::new();
        for proto in Protocol::ALL {
            let cfg = MachineConfig::paper_default(procs);
            let r = Machine::new(cfg, proto).run(Box::new(build(procs, 20)));
            cells.push(r.stats.total_cycles);
        }
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14}",
            procs, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!(
        "\nThe counter line migrates holder-to-holder. Because the lock\n\
         serializes everyone, any cycle added inside the critical section\n\
         multiplies by the queue length — exactly where the lazy protocol's\n\
         2-hop reads and overlapped write announcements pay off, and where\n\
         the lazy-ext variant's release-time notice burst costs the most."
    );
}

//! Quickstart: build the paper's default 64-processor machine, run one
//! application under all four protocols, and print a small report.
//!
//! ```sh
//! cargo run --release --example quickstart [app] [scale] [procs]
//! ```

use lazy_rc::prelude::*;
use lazy_rc::workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = args
        .first()
        .and_then(|s| WorkloadKind::parse(s))
        .unwrap_or(WorkloadKind::Mp3d);
    let scale = args
        .get(1)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    let procs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);

    println!("workload={kind}  scale={}  procs={procs}\n", scale.name());
    println!(
        "{:<10} {:>12} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "protocol", "cycles", "vs SC", "miss rate", "cpu%", "read%", "write%", "sync%"
    );

    let mut sc_cycles = 0u64;
    for proto in Protocol::ALL {
        let cfg = MachineConfig::paper_default(procs);
        let w = kind.build(procs, scale);
        let result = Machine::new(cfg, proto).run(w);
        let s = &result.stats;
        if proto == Protocol::Sc {
            sc_cycles = s.total_cycles;
        }
        let b = s.aggregate_breakdown();
        let t = b.total().max(1) as f64;
        println!(
            "{:<10} {:>12} {:>8.3} {:>9.2}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            proto.name(),
            s.total_cycles,
            s.total_cycles as f64 / sc_cycles.max(1) as f64,
            100.0 * s.miss_rate(),
            100.0 * b.cpu as f64 / t,
            100.0 * b.read as f64 / t,
            100.0 * b.write as f64 / t,
            100.0 * b.sync as f64 / t,
        );
    }

    println!(
        "\nThe lazy protocol admits multiple concurrent writers and delays\n\
         invalidations until acquires; compare its read-stall share with the\n\
         eager protocol's on false-sharing-heavy workloads (mp3d, locusroute)."
    );
}

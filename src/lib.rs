//! `lazy-rc` — a reproduction of *Lazy Release Consistency for
//! Hardware-Coherent Multiprocessors* (Kontothanassis, Scott & Bianchini,
//! Supercomputing '95) as a production-quality Rust library.
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`sim`] — simulation substrate: event kernel, machine configuration
//!   (Table 1), statistics, the workload interface.
//! * [`mesh`] — the 2D-mesh interconnect model.
//! * [`mem`] — caches, write buffers, the coalescing write-through buffer,
//!   and memory-module timing.
//! * [`classify`] — cold/true/false/eviction/write miss classification.
//! * [`core`] — the directory, the four coherence protocols (SC, eager RC,
//!   lazy RC, lazy-ext RC), synchronization services, and the machine.
//! * [`trace`] — the observability layer: structured trace records,
//!   filters, Perfetto/Chrome trace export, latency histograms, the metrics
//!   sampler, and the flight recorder.
//! * [`workloads`] — the seven SPLASH-like applications plus the mp3d
//!   solution-quality experiment.
//!
//! # Quickstart
//!
//! ```
//! use lazy_rc::prelude::*;
//!
//! // A 4-processor machine with the paper's Table-1 parameters.
//! let cfg = MachineConfig::paper_default(4);
//!
//! // A scripted program: P0 writes x then releases a lock; P1 acquires the
//! // lock and reads x.
//! let w = Script::new(
//!     "handoff",
//!     vec![
//!         vec![Op::Acquire(0), Op::Write(0), Op::Release(0)],
//!         vec![Op::Acquire(0), Op::Read(0), Op::Release(0)],
//!         vec![],
//!         vec![],
//!     ],
//! );
//!
//! let result = Machine::new(cfg, Protocol::Lrc).run(Box::new(w));
//! assert!(result.stats.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]

pub use lrc_classify as classify;
pub use lrc_core as core;
pub use lrc_mem as mem;
pub use lrc_mesh as mesh;
pub use lrc_sim as sim;
pub use lrc_trace as trace;
pub use lrc_workloads as workloads;

/// Everything you need to configure and run a simulation.
pub mod prelude {
    pub use lrc_core::{
        resume_sharded, try_run_sharded, try_run_sharded_until, CrashPlan, Fault, FaultPlan,
        FaultRates, Machine, MachineSnapshot, MsgClass, ParallelOptions, Partition, RunResult,
        ShardedCheckpoint, ShardedRunOutcome, SnapshotError, SnapshotRunError, StallDiagnosis,
        StallReason, TraceFilter, TraceRecord, MIN_SNAPSHOT_VERSION, SNAPSHOT_VERSION,
    };
    pub use lrc_sim::{
        Breakdown, FaultStats, MachineConfig, MachineStats, MissClass, Op, Placement, ProcStats,
        Protocol, RaceReport, RaceSite, RaceStats, ResourceLimits, ResourceStats, Script, Workload,
    };
    pub use lrc_workloads::{paper_suite, WorkloadKind};
}
